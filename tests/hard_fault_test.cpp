// Hard (fail-stop) faults, checkpoint/restore and job-level failover
// (DESIGN.md §15).
//
// Groups:
//   * schedule: device deaths are counter-based (pure in (device, iteration)
//     and config), declared exactly once, and gated by the fail-stop class
//     mask — a rate-only config can never kill hardware;
//   * checkpoint: the exec-layer snapshots are a pure function of
//     (workload, t) — bitwise identical across --pdes-threads, sweep worker
//     counts and reruns;
//   * failover: a device killed mid-run aborts its resident jobs, the server
//     re-admits them onto surviving devices from the newest complete
//     checkpoint, and every recovered job lands BITWISE on the unfailed
//     serial reference — with the checker clean, with the fleet report
//     byte-identical for any engine thread count, and with the raced
//     placement path (death between window selection and launch) re-queuing
//     rather than wedging;
//   * verdicts: without checkpointing the aborted job is reported lost; a
//     non-restartable tenant stranded on the dead device surfaces through
//     the engine's attributed hang report, which names the dead device, the
//     evicted tenant and the stuck job;
//   * sharding: window-only fault masks (link/stall) no longer demand
//     lockstep rounds — sharded runs stay byte-identical to serial.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "check/detector.hpp"
#include "cpufree/metrics.hpp"
#include "exec/program.hpp"
#include "exec/slab.hpp"
#include "fault/schedule.hpp"
#include "serve/server.hpp"
#include "sim/rng.hpp"
#include "stencil/problems.hpp"
#include "stencil/runner.hpp"
#include "stencil/slab.hpp"
#include "stencil/variants.hpp"
#include "sweep/executor.hpp"
#include "vgpu/machine.hpp"
#include "vshmem/world.hpp"

namespace {

using serve::ArrivalConfig;
using serve::JobKind;
using serve::JobSpec;
using serve::ServeConfig;
using serve::ServeReport;
using vgpu::MachineSpec;

/// A fail-stop config that kills `device` the first time a resident kernel
/// reaches iteration `at`. No transient rate: hard faults are independent
/// of enabled().
fault::Config kill_device(int device, std::int64_t at) {
  fault::Config cfg;
  fault::HardFault h;
  h.kind = fault::HardFault::Kind::kDevice;
  h.device = device;
  h.at = at;
  cfg.hard.push_back(h);
  cfg.classes |= fault::kClassDeviceDead;
  return cfg;
}

// --- schedule ------------------------------------------------------------------

TEST(HardSchedule, DeviceDeathIsCounterBasedAndDeclaredOnce) {
  fault::Schedule s(kill_device(1, 3));
  EXPECT_FALSE(s.enabled());  // no transient rate...
  EXPECT_TRUE(s.hard_enabled());  // ...yet the fail-stop plane is armed
  // The trigger predicate is pure in (device, iteration).
  EXPECT_FALSE(s.device_dead_at(1, 2));
  EXPECT_TRUE(s.device_dead_at(1, 3));
  EXPECT_TRUE(s.device_dead_at(1, 7));
  EXPECT_FALSE(s.device_dead_at(0, 100));
  EXPECT_EQ(s.device_kill_iteration(1), 3);
  EXPECT_EQ(s.device_kill_iteration(0), -1);
  // Pure queries never transition state.
  EXPECT_FALSE(s.device_dead(1));
  // The stateful declaration fires exactly once, at the first consult
  // at/after the kill point.
  EXPECT_FALSE(s.note_device_iteration(1, 2, 10));
  EXPECT_FALSE(s.device_dead(1));
  EXPECT_TRUE(s.note_device_iteration(1, 3, 20));
  EXPECT_FALSE(s.note_device_iteration(1, 3, 25));
  EXPECT_FALSE(s.note_device_iteration(1, 4, 30));
  EXPECT_TRUE(s.device_dead(1));
  ASSERT_EQ(s.dead_devices().size(), 1u);
  EXPECT_EQ(s.dead_devices().at(1), 20);
  EXPECT_EQ(s.stats().devices_dead, 1);
  EXPECT_TRUE(s.delivery_blackholed(0, 1));
  EXPECT_TRUE(s.delivery_blackholed(1, 0));
  EXPECT_FALSE(s.delivery_blackholed(0, 2));
}

TEST(HardSchedule, ClassMaskGatesFailStopEntries) {
  // A hard entry without the kClassDeviceDead bit is inert: the default
  // transient mask (kClassAll) must never be able to kill hardware.
  fault::Config cfg = kill_device(0, 1);
  cfg.classes = fault::kClassAll;
  EXPECT_FALSE(cfg.hard_enabled());
  fault::Schedule s(cfg);
  EXPECT_FALSE(s.hard_enabled());
  EXPECT_FALSE(s.device_dead_at(0, 5));
  EXPECT_FALSE(s.note_device_iteration(0, 5, 1));
  EXPECT_EQ(s.device_kill_iteration(0), -1);
  EXPECT_EQ(s.stats().devices_dead, 0);
}

TEST(HardSchedule, SameConfigReplaysBitIdentically) {
  const fault::Config cfg = kill_device(2, 5);
  fault::Schedule a(cfg);
  fault::Schedule b(cfg);
  for (std::int64_t t = 1; t <= 8; ++t) {
    EXPECT_EQ(a.note_device_iteration(2, t, t * 100),
              b.note_device_iteration(2, t, t * 100))
        << "iteration " << t;
  }
  EXPECT_EQ(a.dead_devices(), b.dead_devices());
}

// --- checkpoint byte-stability -------------------------------------------------

/// Runs one checkpointing CPU-Free stencil on a 2-device slice and returns
/// the store's raw snapshots. Mirrors the serve workload's wiring (slice
/// world, functional run, data-coupled engine rounds).
std::map<int, std::map<int, std::vector<double>>> ckpt_snapshots(
    int pdes_threads) {
  MachineSpec spec = MachineSpec::hgx_a100(2);
  spec.pdes_threads = pdes_threads;
  vgpu::Machine m(spec);
  m.trace().set_enabled(false);
  m.engine().set_data_coupled(true);  // functional run on a sharded engine
  vshmem::World w(m, {0, 1}, "ckpt");
  stencil::Jacobi2D p;
  p.nx = 48;
  p.ny = 48;
  stencil::StencilConfig cfg;
  cfg.iterations = 8;
  cfg.functional = true;
  cfg.trace = false;
  cfg.persistent_blocks = 4;
  stencil::SlabStencil<stencil::Jacobi2D> S(w, p, cfg);
  stencil::SlabSetup setup = stencil::make_slab_setup(S, stencil::Variant::kCpuFree);
  exec::CheckpointStore store(2);
  setup.params.checkpoint_every = 2;
  setup.params.checkpoint_store = &store;
  m.engine().spawn(
      exec::run_slab_persistent_task(setup.program, setup.plan, setup.params));
  m.engine().run();
  EXPECT_EQ(S.gather(cfg.iterations & 1), S.reference(cfg.iterations));
  EXPECT_EQ(store.last_complete(), 6);  // 2, 4, 6 (never the final iteration)
  return store.snapshots;
}

TEST(Checkpoint, SnapshotsBitStableAcrossPdesThreadsAndReruns) {
  const auto golden = ckpt_snapshots(1);
  ASSERT_FALSE(golden.empty());
  EXPECT_EQ(ckpt_snapshots(1), golden) << "rerun differs";
  EXPECT_EQ(ckpt_snapshots(2), golden) << "pdes-threads 2 differs";
  EXPECT_EQ(ckpt_snapshots(4), golden) << "pdes-threads 4 differs";
}

TEST(Checkpoint, SnapshotsBitStableAcrossSweepThreads) {
  // Each sweep job owns its Machine; worker count must not perturb the
  // captured bytes (the --threads half of the determinism contract).
  const auto golden = ckpt_snapshots(1);
  std::map<int, std::map<int, std::vector<double>>> out[2];
  sweep::Executor ex(sweep::Options{/*threads=*/2, /*progress=*/false});
  for (int i = 0; i < 2; ++i) {
    ex.add("ckpt" + std::to_string(i), {}, [i, &out] {
      out[i] = ckpt_snapshots(1);
      return sweep::RunResult{};
    });
  }
  (void)ex.run();
  EXPECT_EQ(out[0], golden);
  EXPECT_EQ(out[1], golden);
}

// --- failover ------------------------------------------------------------------

JobSpec stencil_job(int id, std::string tenant, int devices, std::size_t n,
                    int iterations) {
  JobSpec j;
  j.id = id;
  j.tenant = std::move(tenant);
  j.kind = JobKind::kStencil;
  j.devices = devices;
  j.nx = n;
  j.ny = n;
  j.iterations = iterations;
  j.slo_factor = 64.0;  // failures inflate makespans by design
  return j;
}

/// Three stencil tenants on an 8-device multi_node machine; the first spans
/// devices {0, 1} (first-fit), so the kill of device 1 at iteration 3 lands
/// inside at least one running slice.
std::vector<JobSpec> small_fleet() {
  std::vector<JobSpec> jobs;
  jobs.push_back(stencil_job(0, "t0", 2, 48, 8));
  jobs.push_back(stencil_job(1, "t1", 1, 48, 8));
  jobs.push_back(stencil_job(2, "t2", 2, 64, 8));
  return jobs;
}

ServeConfig failover_config(int checkpoint_every, int pdes_threads = 1) {
  ServeConfig cfg;
  cfg.machine = MachineSpec::multi_node(2, 4);
  cfg.machine.faults = kill_device(1, 3);
  cfg.machine.pdes_threads = pdes_threads;
  cfg.arrival.mode = ArrivalConfig::Mode::kClosed;
  cfg.arrival.concurrency = 0;
  cfg.checkpoint_every = checkpoint_every;
  cfg.compute_isolated = false;
  return cfg;
}

TEST(Failover, RecoversFromCheckpointBitwise) {
  const ServeReport rep = serve::run_serve(failover_config(2), small_fleet());
  // Every job — including every one the kill aborted — must finish verified:
  // verify() compares the recovered state bitwise against the full serial
  // reference from the TRUE initial state, so this is the restore-then-
  // verify equality, not a weaker "completed" check.
  EXPECT_EQ(rep.fleet.completed, 3);
  EXPECT_EQ(rep.fleet.verified, 3);
  EXPECT_EQ(rep.fleet.jobs_lost, 0);
  EXPECT_GE(rep.fleet.failovers, 1);
  EXPECT_EQ(rep.hang_report, "");
  EXPECT_GT(rep.fleet.replayed_iterations, 0);
  EXPECT_GT(rep.fleet.goodput, 0.0);
  EXPECT_LE(rep.fleet.goodput, 1.0);

  int recovered = 0;
  int from_checkpoint = 0;
  for (const auto& r : rep.jobs) {
    EXPECT_TRUE(r.out.verified) << r.spec.id << ": " << r.out.detail;
    if (r.out.attempts < 2) continue;
    ++recovered;
    // The kill counter is keyed to the FIRST resident kernel reaching
    // iteration 3, so the declared progress destroyed on the device is
    // always 2 iterations — but a co-resident tenant that had not yet
    // committed its own t=2 capture legitimately restarts from scratch.
    // Either way the accounting must balance exactly: what was not
    // restored is lost, and the recovery replays the rest.
    EXPECT_GE(r.out.restarted_from, 0) << r.spec.id;
    EXPECT_LE(r.out.restarted_from, 2) << r.spec.id;
    EXPECT_EQ(r.out.restarted_from + r.out.lost_iterations, 2) << r.spec.id;
    EXPECT_EQ(r.out.replayed_iterations,
              r.spec.iterations - r.out.restarted_from)
        << r.spec.id;
    EXPECT_GE(r.out.resumed_at, r.out.aborted_at) << r.spec.id;
    // The recovery must have moved off the dead device.
    EXPECT_NE(r.out.first_device, 1) << r.spec.id;
    if (r.out.restarted_from == 2) {
      ++from_checkpoint;
      EXPECT_NE(r.out.detail.find("(resumed at 2)"), std::string::npos)
          << r.out.detail;
    }
  }
  EXPECT_GE(recovered, 1);
  // The declaring job's own t=2 capture always precedes its iteration-3
  // loop top, so at least one recovery restores from the checkpoint proper.
  EXPECT_GE(from_checkpoint, 1);
}

TEST(Failover, CheckerStaysCleanThroughAbortAndRestore) {
  check::Detector det;
  ServeConfig cfg = failover_config(2);
  cfg.observer = &det;
  const ServeReport rep = serve::run_serve(cfg, small_fleet());
  EXPECT_EQ(rep.fleet.verified, 3);
  EXPECT_GE(rep.fleet.failovers, 1);
  EXPECT_TRUE(det.clean()) << det.report_text();
}

TEST(Failover, NoCheckpointControlReportsJobLost) {
  const ServeReport rep = serve::run_serve(failover_config(0), small_fleet());
  EXPECT_GE(rep.fleet.jobs_lost, 1);
  EXPECT_EQ(rep.fleet.failovers, 0);  // nothing restartable, nothing re-admitted
  EXPECT_EQ(rep.fleet.completed + rep.fleet.jobs_lost, rep.fleet.jobs);
  EXPECT_EQ(rep.fleet.verified, rep.fleet.completed);
  EXPECT_GT(rep.fleet.lost_iterations, 0);
  EXPECT_LT(rep.fleet.goodput, 1.0);
  for (const auto& r : rep.jobs) {
    if (!r.out.lost) continue;
    EXPECT_FALSE(r.out.completed) << r.spec.id;
    EXPECT_EQ(r.out.detail.rfind("lost: ", 0), 0u) << r.out.detail;
    EXPECT_NE(r.out.detail.find("no checkpointing configured"),
              std::string::npos)
        << r.out.detail;
    EXPECT_EQ(r.out.attempts, 1) << r.spec.id;
  }
}

/// Every per-job number of a hard-fault run that must be bit-identical
/// across reruns and engine thread counts, one line per job.
std::string failover_fingerprint(const ServeReport& rep) {
  std::ostringstream os;
  for (const auto& r : rep.jobs) {
    os << r.spec.id << '|' << r.out.arrival << '|' << r.out.admit << '|'
       << r.out.end << '|' << r.out.admitted << r.out.completed
       << r.out.verified << r.out.lost << '|' << r.out.first_device << '|'
       << r.out.attempts << '|' << r.out.restarted_from << '|'
       << r.out.aborted_at << '|' << r.out.resumed_at << '|'
       << r.out.lost_iterations << '|' << r.out.replayed_iterations << '|'
       << r.out.detail << '\n';
  }
  const serve::FleetMetrics& f = rep.fleet;
  os << f.fleet_makespan_us << '|' << f.failovers << '|' << f.jobs_lost << '|'
     << f.requeues << '|' << f.lost_iterations << '|' << f.replayed_iterations
     << '|' << f.goodput << '|' << f.mean_recovery_latency_us << '\n';
  return os.str();
}

TEST(Failover, FleetByteIdenticalAcrossRerunsAndPdesThreads) {
  std::vector<std::string> prints;
  for (int pdes : {1, 1, 2, 4}) {
    prints.push_back(
        failover_fingerprint(serve::run_serve(failover_config(2, pdes),
                                              small_fleet())));
  }
  EXPECT_NE(prints[0].find("(resumed at"), std::string::npos) << prints[0];
  EXPECT_EQ(prints[0], prints[1]) << "rerun differs";
  EXPECT_EQ(prints[0], prints[2]) << "pdes-threads 2 differs";
  EXPECT_EQ(prints[0], prints[3]) << "pdes-threads 4 differs";
}

// --- raced placement (admission vs. death) -------------------------------------

/// The fig_failover fleet shape (3 tenants x 3 stencil jobs, open arrivals):
/// job shapes drawn from the same salted counter streams, so this replays
/// the figure's kill/ckpt2 cell, whose arrival pattern admits one job onto a
/// window containing device 1 in the same instant the death is declared.
constexpr std::uint64_t kShapeSalt = 0xfa110feedull;

std::vector<JobSpec> figure_fleet(std::uint64_t seed) {
  static constexpr int kDevices[] = {1, 2, 4};
  static constexpr std::size_t kStencilN[] = {48, 64, 96};
  std::vector<JobSpec> jobs;
  int id = 0;
  for (int j = 0; j < 3; ++j) {
    for (int t = 0; t < 3; ++t) {
      const std::uint64_t tu = static_cast<std::uint64_t>(t);
      const std::uint64_t ju = static_cast<std::uint64_t>(j);
      const int devices =
          kDevices[sim::stream_mix(seed, kShapeSalt, tu, ju) % 3];
      const std::uint64_t shape = sim::stream_mix(seed, kShapeSalt + 1, tu, ju);
      const int iters = ((shape >> 8) & 1) != 0 ? 12 : 8;
      // += rather than operator+: GCC 12 -Wrestrict false positive.
      std::string tenant = "t";
      tenant += std::to_string(t);
      jobs.push_back(stencil_job(id++, std::move(tenant), devices,
                                 kStencilN[shape % 3], iters));
    }
  }
  return jobs;
}

TEST(Failover, RacedPlacementIsRequeuedNotWedged) {
  // Same seed derivation as fig_failover's kill/ckpt2 cell (cell index 2).
  const std::uint64_t cell_seed =
      sim::stream_mix(1, kShapeSalt + 7, 2, 0);
  ServeConfig cfg = failover_config(2);
  cfg.arrival.mode = ArrivalConfig::Mode::kOpen;
  cfg.arrival.mean_interarrival_us = 20.0;
  cfg.arrival.seed = cell_seed;
  const ServeReport rep = serve::run_serve(cfg, figure_fleet(cell_seed));
  // The raced job was re-queued before anything was built...
  EXPECT_GE(rep.fleet.requeues, 1);
  // ...and neither wedged nor double-counted: every job still ends in
  // exactly one terminal state, and every completed job verifies.
  EXPECT_EQ(rep.fleet.completed + rep.fleet.jobs_lost + rep.fleet.rejected,
            rep.fleet.jobs);
  EXPECT_EQ(rep.fleet.rejected, 0);
  EXPECT_EQ(rep.fleet.jobs_lost, 0);
  EXPECT_EQ(rep.fleet.verified, rep.fleet.jobs);
  EXPECT_EQ(rep.hang_report, "");
}

// --- hang attribution ----------------------------------------------------------

TEST(Failover, HangReportNamesDeadDeviceAndEvictedTenant) {
  // A checkpointing stencil and a CG job co-resident on devices {0, 1}
  // (default blocks = half the cooperative cap). The kill aborts the
  // stencil, which recovers on surviving devices; CG has no skip-join
  // protocol, so its PEs strand on blackholed signals and the run ends in
  // an attributed hang report instead of a clean drain.
  std::vector<JobSpec> jobs;
  jobs.push_back(stencil_job(0, "t0", 2, 48, 8));
  JobSpec cg = stencil_job(1, "t1", 2, 48, 12);
  cg.kind = JobKind::kCg;
  jobs.push_back(cg);

  ServeConfig cfg = failover_config(2);
  cfg.machine = MachineSpec::hgx_a100(4);
  cfg.machine.faults = kill_device(1, 3);
  const ServeReport rep = serve::run_serve(cfg, jobs);

  // The stencil still recovered and verified before the drain stalled.
  EXPECT_TRUE(rep.jobs[0].out.verified) << rep.jobs[0].out.detail;
  EXPECT_GE(rep.jobs[0].out.attempts, 2);
  // The CG tenant never completed...
  EXPECT_FALSE(rep.jobs[1].out.completed);
  // ...and the hang report attributes the loss: the incident log names the
  // dead device and the evicted stencil tenant, and the stuck waits carry
  // the CG job's label.
  ASSERT_FALSE(rep.hang_report.empty());
  EXPECT_NE(rep.hang_report.find("device 1 declared dead"), std::string::npos)
      << rep.hang_report;
  EXPECT_NE(rep.hang_report.find("evicted"), std::string::npos)
      << rep.hang_report;
  EXPECT_NE(rep.hang_report.find("j0:t0:stencil"), std::string::npos)
      << rep.hang_report;
  EXPECT_NE(rep.hang_report.find("j1:t1:cg"), std::string::npos)
      << rep.hang_report;
}

// --- sharding of window-only fault masks ---------------------------------------

std::string window_faults_json(int pdes_threads) {
  MachineSpec spec = MachineSpec::hgx_a100(4);
  spec.pdes_threads = pdes_threads;
  spec.faults.seed = 9;
  spec.faults.rate = 0.2;
  spec.faults.classes =
      fault::kClassLink | fault::kClassFlap | fault::kClassStall;
  stencil::Jacobi2D p;
  p.nx = 128;
  p.ny = 128;
  stencil::StencilConfig cfg;
  cfg.iterations = 12;
  cfg.persistent_blocks = 4;
  const stencil::RunOutput out =
      stencil::run_jacobi2d(stencil::Variant::kCpuFree, spec, p, cfg);
  EXPECT_TRUE(out.verified);
  EXPECT_GT(out.result.metrics.faults_injected, 0);
  return cpufree::to_json(out.result.metrics);
}

TEST(PdesSharding, WindowOnlyFaultMasksShardByteIdentically) {
  // Link/flap/stall windows are pure functions of simulated time: they no
  // longer force lockstep rounds, and the sharded engine must still produce
  // byte-identical metrics for any thread count.
  const std::string golden = window_faults_json(1);
  EXPECT_EQ(window_faults_json(2), golden) << "pdes-threads 2 differs";
  EXPECT_EQ(window_faults_json(4), golden) << "pdes-threads 4 differs";
}

}  // namespace
