// Tests for the dacelite mini-compiler: IR validation, transformations
// (GPUTransform, MapFusion, GPUPersistentKernel with relaxed barriers,
// NVSHMEMArray storage inference, MPI->NVSHMEM port), expansion selection,
// and end-to-end execution of the generated programs against serial
// references in both backends.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "dacelite/exec.hpp"
#include "dacelite/frontend.hpp"
#include "dacelite/ir.hpp"
#include "dacelite/transforms.hpp"
#include "hostmpi/comm.hpp"
#include "vgpu/machine.hpp"
#include "vshmem/world.hpp"

namespace {

using dacelite::ArrayDesc;
using dacelite::ExecOptions;
using dacelite::LibKind;
using dacelite::LibraryNode;
using dacelite::MapNode;
using dacelite::ProgramData;
using dacelite::PutExpansion;
using dacelite::Schedule;
using dacelite::Sdfg;
using dacelite::State;
using dacelite::Storage;
using dacelite::Subset;
using dacelite::ValidationError;
using vgpu::MachineSpec;

MachineSpec hgx(int n) { return MachineSpec::hgx_a100(n); }

// --- IR ----------------------------------------------------------------------

TEST(Ir, ValidateRejectsUnknownArray) {
  Sdfg s;
  s.name = "bad";
  State& st = s.add_body_state("st");
  MapNode m;
  m.name = "m";
  m.reads = {"ghost"};
  st.add(std::move(m));
  EXPECT_THROW(s.validate(), ValidationError);
}

TEST(Ir, ValidateRejectsDuplicateArray) {
  Sdfg s;
  s.add_array(ArrayDesc{"A", 8, Storage::kHost, {}});
  EXPECT_THROW(s.add_array(ArrayDesc{"A", 8, Storage::kHost, {}}),
               ValidationError);
}

TEST(Ir, ValidateRejectsMemletOutOfRange) {
  Sdfg s;
  s.add_array(ArrayDesc{"A", 8, Storage::kHost, {}});
  State& st = s.add_body_state("st");
  st.add(dacelite::AccessNode{"A"});
  st.connect(0, 5, "A");
  EXPECT_THROW(s.validate(), ValidationError);
}

TEST(Ir, NvshmemNodeRequiresSymmetricStorage) {
  Sdfg s;
  s.add_array(ArrayDesc{"A", 8, Storage::kGpuGlobal, {}});
  State& st = s.add_body_state("st");
  LibraryNode put;
  put.kind = LibKind::kNvshmemPutmemSignal;
  put.array = "A";
  st.add(put);
  EXPECT_THROW(s.validate(), ValidationError);
  dacelite::apply_nvshmem_arrays(s);
  EXPECT_NO_THROW(s.validate());
  EXPECT_EQ(s.arrays.at("A").storage, Storage::kGpuNvshmem);
}

TEST(Ir, SubsetShapes) {
  EXPECT_TRUE((Subset{0, 1, 1}).single_element());
  EXPECT_TRUE((Subset{4, 10, 1}).contiguous());
  EXPECT_FALSE((Subset{4, 10, 34}).contiguous());
  EXPECT_TRUE((Subset{4, 1, 34}).contiguous());  // one element is contiguous
  EXPECT_EQ((Subset{10, 4, 3}).index(2), 16u);
}

TEST(Ir, ReadWriteSetsIncludeLibraryNodes) {
  Sdfg s;
  s.add_array(ArrayDesc{"A", 8, Storage::kHost, {}});
  State& st = s.add_body_state("st");
  LibraryNode send;
  send.kind = LibKind::kMpiIsend;
  send.array = "A";
  st.add(send);
  const auto reads = st.read_set();
  const auto writes = st.write_set();
  EXPECT_NE(std::find(reads.begin(), reads.end(), "A"), reads.end());
  EXPECT_NE(std::find(writes.begin(), writes.end(), "A"), writes.end());
}

// --- Transformations ----------------------------------------------------------

TEST(Transforms, GpuTransformSchedulesMapsAndMovesArrays) {
  auto prog = dacelite::make_jacobi1d(64, 4, 3);
  const int changed = dacelite::apply_gpu_transform(prog.sdfg);
  EXPECT_GT(changed, 0);
  EXPECT_TRUE(prog.sdfg.gpu);
  EXPECT_EQ(prog.sdfg.arrays.at("A").storage, Storage::kGpuGlobal);
  for (const State& st : prog.sdfg.body) {
    for (const auto& n : st.nodes) {
      if (const auto* m = std::get_if<MapNode>(&n)) {
        EXPECT_EQ(m->schedule, Schedule::kGpuDevice);
      }
    }
  }
}

TEST(Transforms, MapFusionFusesProducerConsumer) {
  Sdfg s;
  s.add_array(ArrayDesc{"A", 8, Storage::kHost, {}});
  s.add_array(ArrayDesc{"tmp", 8, Storage::kHost, {}});
  s.add_array(ArrayDesc{"B", 8, Storage::kHost, {}});
  State& st = s.add_body_state("st");
  MapNode a;
  a.name = "a";
  a.points = 8;
  a.reads = {"A"};
  a.writes = {"tmp"};
  MapNode b;
  b.name = "b";
  b.points = 8;
  b.reads = {"tmp"};
  b.writes = {"B"};
  const std::size_t ia = st.add(std::move(a));
  const std::size_t iacc = st.add(dacelite::AccessNode{"tmp"});
  const std::size_t ib = st.add(std::move(b));
  st.connect(ia, iacc, "tmp");
  st.connect(iacc, ib, "tmp");
  EXPECT_EQ(dacelite::apply_map_fusion(st), 1);
  const auto* merged = std::get_if<MapNode>(&st.nodes[ia]);
  ASSERT_NE(merged, nullptr);
  EXPECT_EQ(merged->name, "a+b");
  EXPECT_DOUBLE_EQ(merged->bytes_per_point, 32.0);
  EXPECT_TRUE(st.memlets.empty());
}

TEST(Transforms, MapFusionRejectsMismatchedDomains) {
  Sdfg s;
  s.add_array(ArrayDesc{"tmp", 8, Storage::kHost, {}});
  State& st = s.add_body_state("st");
  MapNode a;
  a.points = 8;
  a.writes = {"tmp"};
  MapNode b;
  b.points = 16;  // different domain
  b.reads = {"tmp"};
  const std::size_t ia = st.add(std::move(a));
  const std::size_t iacc = st.add(dacelite::AccessNode{"tmp"});
  const std::size_t ib = st.add(std::move(b));
  st.connect(ia, iacc, "tmp");
  st.connect(iacc, ib, "tmp");
  EXPECT_EQ(dacelite::apply_map_fusion(st), 0);
}

TEST(Transforms, MapFusionRejectsSharedIntermediate) {
  Sdfg s;
  s.add_array(ArrayDesc{"tmp", 8, Storage::kHost, {}});
  State& st = s.add_body_state("st");
  MapNode a;
  a.points = 8;
  a.writes = {"tmp"};
  MapNode b;
  b.points = 8;
  b.reads = {"tmp"};
  MapNode c;
  c.points = 8;
  c.reads = {"tmp"};  // second consumer
  const std::size_t ia = st.add(std::move(a));
  const std::size_t iacc = st.add(dacelite::AccessNode{"tmp"});
  const std::size_t ib = st.add(std::move(b));
  const std::size_t ic = st.add(std::move(c));
  st.connect(ia, iacc, "tmp");
  st.connect(iacc, ib, "tmp");
  st.connect(iacc, ic, "tmp");
  EXPECT_EQ(dacelite::apply_map_fusion(st), 0);
}

TEST(Transforms, PersistentRequiresGpu) {
  auto prog = dacelite::make_jacobi1d(64, 4, 3);
  EXPECT_THROW(dacelite::apply_persistent(prog.sdfg), ValidationError);
}

TEST(Transforms, PersistentBarrierPlacementIsRelaxed) {
  // Two independent states (disjoint arrays) need no barrier between them;
  // a dependent edge does.
  Sdfg s;
  s.add_array(ArrayDesc{"A", 8, Storage::kHost, {}});
  s.add_array(ArrayDesc{"B", 8, Storage::kHost, {}});
  s.add_array(ArrayDesc{"C", 8, Storage::kHost, {}});
  {
    State& st = s.add_body_state("writes_A");
    MapNode m;
    m.points = 8;
    m.schedule = Schedule::kGpuDevice;
    m.writes = {"A"};
    st.add(std::move(m));
  }
  {
    State& st = s.add_body_state("independent_B");
    MapNode m;
    m.points = 8;
    m.schedule = Schedule::kGpuDevice;
    m.reads = {"B"};
    m.writes = {"C"};
    st.add(std::move(m));
  }
  {
    State& st = s.add_body_state("reads_C");
    MapNode m;
    m.points = 8;
    m.schedule = Schedule::kGpuDevice;
    m.reads = {"C"};
    m.writes = {"B"};
    st.add(std::move(m));
  }
  s.gpu = true;
  dacelite::apply_persistent(s);
  ASSERT_EQ(s.barrier_after.size(), 3u);
  // Dependencies: state1 -> state2 on C (needs a barrier after state1) and
  // state2 -> next iteration's state1 on B (covered by a barrier after
  // state0, since state0 does not touch B). The edge after state2 carries no
  // dependency and stays barrier-free — the relaxation in action.
  EXPECT_TRUE(s.barrier_after[0]);
  EXPECT_TRUE(s.barrier_after[1]);
  EXPECT_FALSE(s.barrier_after[2]);
}

TEST(Transforms, MpiToNvshmemRewritesNodes) {
  auto prog = dacelite::make_jacobi1d(64, 4, 3);
  int puts = 0, waits = 0, waitalls = 0;
  const int changed = dacelite::apply_mpi_to_nvshmem(prog.sdfg);
  for (const State& st : prog.sdfg.body) {
    for (const auto& n : st.nodes) {
      if (const auto* lib = std::get_if<LibraryNode>(&n)) {
        if (lib->kind == LibKind::kNvshmemPutmemSignal) ++puts;
        if (lib->kind == LibKind::kNvshmemSignalWait) ++waits;
        if (lib->kind == LibKind::kMpiWaitall) ++waitalls;
      }
    }
  }
  EXPECT_EQ(puts, 2);      // Isend -> PutmemSignal
  EXPECT_EQ(waits, 2);     // Irecv -> SignalWait
  EXPECT_EQ(waitalls, 0);  // dropped
  EXPECT_EQ(changed, 5);
}

TEST(Transforms, ExpansionSelection) {
  using dacelite::select_expansion;
  EXPECT_EQ(select_expansion(Subset{0, 1, 1}, Subset{9, 1, 1}),
            PutExpansion::kSingleElementP);
  EXPECT_EQ(select_expansion(Subset{0, 64, 1}, Subset{9, 64, 1}),
            PutExpansion::kContiguousSignal);
  EXPECT_EQ(select_expansion(Subset{0, 64, 34}, Subset{9, 64, 34}),
            PutExpansion::kStridedIputSignal);
  // Mixed: strided on either side forces the iput path.
  EXPECT_EQ(select_expansion(Subset{0, 64, 1}, Subset{9, 64, 34}),
            PutExpansion::kStridedIputSignal);
}

TEST(Transforms, ToCpuFreeRecipeProducesValidPersistentSdfg) {
  auto prog = dacelite::make_jacobi2d(24, 4, 3);
  dacelite::to_cpu_free(prog.sdfg);
  EXPECT_TRUE(prog.sdfg.gpu);
  EXPECT_TRUE(prog.sdfg.persistent);
  EXPECT_EQ(prog.sdfg.arrays.at("A").storage, Storage::kGpuNvshmem);
  EXPECT_NO_THROW(prog.sdfg.validate());
}

TEST(Frontend, GridDims) {
  EXPECT_EQ(dacelite::grid_dims(1), (std::pair<int, int>{1, 1}));
  EXPECT_EQ(dacelite::grid_dims(2), (std::pair<int, int>{1, 2}));  // rectangular
  EXPECT_EQ(dacelite::grid_dims(4), (std::pair<int, int>{2, 2}));
  EXPECT_EQ(dacelite::grid_dims(8), (std::pair<int, int>{2, 4}));  // rectangular
  EXPECT_EQ(dacelite::grid_dims(6), (std::pair<int, int>{2, 3}));
}

// --- End-to-end: generated code matches serial references --------------------

class Jacobi1dEndToEnd : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(Jacobi1dEndToEnd, DiscreteMatchesReference) {
  const auto [ranks, iters] = GetParam();
  auto prog = dacelite::make_jacobi1d(48, ranks, iters);
  dacelite::apply_gpu_transform(prog.sdfg);
  vgpu::Machine m(hgx(ranks));
  vshmem::World w(m);
  hostmpi::Comm comm(m);
  ProgramData data(w, prog.sdfg, /*functional=*/true);
  dacelite::execute_discrete(m, comm, data, prog.sdfg, ExecOptions{});
  EXPECT_EQ(prog.gather(data), prog.reference(iters));
}

TEST_P(Jacobi1dEndToEnd, PersistentCpuFreeMatchesReference) {
  const auto [ranks, iters] = GetParam();
  auto prog = dacelite::make_jacobi1d(48, ranks, iters);
  dacelite::to_cpu_free(prog.sdfg);
  vgpu::Machine m(hgx(ranks));
  vshmem::World w(m);
  ProgramData data(w, prog.sdfg, /*functional=*/true);
  dacelite::execute_persistent(m, w, data, prog.sdfg, ExecOptions{});
  EXPECT_EQ(prog.gather(data), prog.reference(iters));
}

INSTANTIATE_TEST_SUITE_P(
    Grids, Jacobi1dEndToEnd,
    ::testing::Combine(::testing::Values(1, 2, 4, 8), ::testing::Values(1, 5)));

class Jacobi2dEndToEnd : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(Jacobi2dEndToEnd, DiscreteMatchesReference) {
  const auto [ranks, iters] = GetParam();
  auto prog = dacelite::make_jacobi2d(24, ranks, iters);
  dacelite::apply_gpu_transform(prog.sdfg);
  vgpu::Machine m(hgx(ranks));
  vshmem::World w(m);
  hostmpi::Comm comm(m);
  ProgramData data(w, prog.sdfg, true);
  dacelite::execute_discrete(m, comm, data, prog.sdfg, ExecOptions{});
  EXPECT_EQ(prog.gather(data), prog.reference(iters));
}

TEST_P(Jacobi2dEndToEnd, PersistentCpuFreeMatchesReference) {
  const auto [ranks, iters] = GetParam();
  auto prog = dacelite::make_jacobi2d(24, ranks, iters);
  dacelite::to_cpu_free(prog.sdfg);
  vgpu::Machine m(hgx(ranks));
  vshmem::World w(m);
  ProgramData data(w, prog.sdfg, true);
  dacelite::execute_persistent(m, w, data, prog.sdfg, ExecOptions{});
  EXPECT_EQ(prog.gather(data), prog.reference(iters));
}

INSTANTIATE_TEST_SUITE_P(
    Grids, Jacobi2dEndToEnd,
    ::testing::Combine(::testing::Values(1, 2, 4, 8), ::testing::Values(1, 4)));

// Functional check of MapFusion: a two-stage pipeline (tmp = 2A; B = tmp+1)
// computes the same result before and after fusion, and the fused program
// launches half the kernels.
TEST(Transforms, MapFusionPreservesSemanticsAndSavesLaunches) {
  auto build = [] {
    Sdfg s;
    s.name = "pipeline";
    s.default_iterations = 3;
    auto init = [](int, std::size_t i) { return static_cast<double>(i); };
    s.add_array(ArrayDesc{"A", 8, Storage::kHost, init});
    s.add_array(ArrayDesc{"tmp", 8, Storage::kHost, {}});
    s.add_array(ArrayDesc{"B", 8, Storage::kHost, {}});
    State& st = s.add_body_state("stage");
    MapNode a;
    a.name = "double";
    a.points = 8;
    a.reads = {"A"};
    a.writes = {"tmp"};
    a.body = [](dacelite::ExecCtx& c) {
      auto in = c.local("A");
      auto out = c.local("tmp");
      for (std::size_t i = 0; i < 8; ++i) out[i] = 2.0 * in[i];
    };
    MapNode b;
    b.name = "inc";
    b.points = 8;
    b.reads = {"tmp"};
    b.writes = {"B"};
    b.body = [](dacelite::ExecCtx& c) {
      auto in = c.local("tmp");
      auto out = c.local("B");
      for (std::size_t i = 0; i < 8; ++i) out[i] = in[i] + 1.0;
    };
    const std::size_t ia = st.add(std::move(a));
    const std::size_t iacc = st.add(dacelite::AccessNode{"tmp"});
    const std::size_t ib = st.add(std::move(b));
    st.connect(ia, iacc, "tmp");
    st.connect(iacc, ib, "tmp");
    return s;
  };

  auto run = [](Sdfg& s) {
    dacelite::apply_gpu_transform(s);
    vgpu::Machine m(hgx(1));
    vshmem::World w(m);
    hostmpi::Comm comm(m);
    ProgramData data(w, s, true);
    dacelite::execute_discrete(m, comm, data, s, ExecOptions{});
    std::vector<double> out(data.local("B", 0).begin(),
                            data.local("B", 0).end());
    int map_launches = 0;
    for (const auto& iv : m.trace().intervals()) {
      if (iv.cat == sim::Cat::kKernel) ++map_launches;
    }
    return std::pair<std::vector<double>, int>(out, map_launches);
  };

  Sdfg unfused = build();
  Sdfg fused = build();
  EXPECT_EQ(dacelite::apply_map_fusion(fused), 1);
  const auto [out_a, launches_a] = run(unfused);
  const auto [out_b, launches_b] = run(fused);
  EXPECT_EQ(out_a, out_b);
  EXPECT_EQ(out_a[3], 7.0);  // 2*3 + 1
  EXPECT_EQ(launches_b, launches_a / 2);
}

// Setup states run once before the loop; tasklets execute on the host path.
TEST(Exec, SetupStateAndTaskletRunOnce) {
  Sdfg s;
  s.name = "with_setup";
  s.default_iterations = 4;
  s.add_array(ArrayDesc{"A", 4, Storage::kHost, {}});
  int setup_runs = 0;
  int tasklet_runs = 0;
  {
    State& st = s.add_setup_state("init");
    MapNode m;
    m.name = "fill";
    m.points = 4;
    m.writes = {"A"};
    m.body = [&setup_runs](dacelite::ExecCtx& c) {
      ++setup_runs;
      auto a = c.local("A");
      for (std::size_t i = 0; i < 4; ++i) a[i] = 5.0;
    };
    st.add(std::move(m));
  }
  {
    State& st = s.add_body_state("step");
    dacelite::Tasklet tl;
    tl.name = "bump";
    tl.reads = {"A"};
    tl.writes = {"A"};
    tl.body = [&tasklet_runs](dacelite::ExecCtx& c) {
      ++tasklet_runs;
      c.local("A")[0] += 1.0;
    };
    st.add(std::move(tl));
  }
  dacelite::apply_gpu_transform(s);
  vgpu::Machine m(hgx(1));
  vshmem::World w(m);
  hostmpi::Comm comm(m);
  ProgramData data(w, s, true);
  dacelite::execute_discrete(m, comm, data, s, ExecOptions{});
  EXPECT_EQ(setup_runs, 1);
  EXPECT_EQ(tasklet_runs, 4);
  EXPECT_EQ(data.local("A", 0)[0], 9.0);  // 5 + 4 increments
}

// --- Backend misuse guards ----------------------------------------------------

TEST(Exec, PersistentBackendRejectsNonPersistentSdfg) {
  auto prog = dacelite::make_jacobi1d(16, 2, 1);
  dacelite::apply_gpu_transform(prog.sdfg);
  vgpu::Machine m(hgx(2));
  vshmem::World w(m);
  ProgramData data(w, prog.sdfg, true);
  EXPECT_THROW(
      dacelite::execute_persistent(m, w, data, prog.sdfg, ExecOptions{}),
      ValidationError);
}

TEST(Exec, DiscreteBackendRejectsNvshmemNodes) {
  auto prog = dacelite::make_jacobi1d(16, 2, 1);
  dacelite::to_cpu_free(prog.sdfg);
  vgpu::Machine m(hgx(2));
  vshmem::World w(m);
  hostmpi::Comm comm(m);
  ProgramData data(w, prog.sdfg, true);
  EXPECT_THROW(
      dacelite::execute_discrete(m, comm, data, prog.sdfg, ExecOptions{}),
      ValidationError);
}

// --- Performance shape (Fig. 6.3) ---------------------------------------------

TEST(Shape, CpuFreeGeneratedCodeBeatsMpiBaseline) {
  const int ranks = 8;
  const int iters = 20;
  ExecOptions opt;
  opt.functional = false;

  auto base = dacelite::make_jacobi2d(1024, ranks, iters);
  dacelite::apply_gpu_transform(base.sdfg);
  vgpu::Machine mb(hgx(ranks));
  vshmem::World wb(mb);
  hostmpi::Comm comm(mb);
  ProgramData db(wb, base.sdfg, false);
  const auto rb = dacelite::execute_discrete(mb, comm, db, base.sdfg, opt);

  auto free_prog = dacelite::make_jacobi2d(1024, ranks, iters);
  dacelite::to_cpu_free(free_prog.sdfg);
  vgpu::Machine mf(hgx(ranks));
  vshmem::World wf(mf);
  ProgramData df(wf, free_prog.sdfg, false);
  const auto rf =
      dacelite::execute_persistent(mf, wf, df, free_prog.sdfg, opt);

  EXPECT_LT(rf.metrics.total, rb.metrics.total);
  // Fig. 6.3b: the baseline is dominated by communication — in the paper's
  // accounting, everything that is not computation (host API calls, staging,
  // MPI waits, wire time).
  EXPECT_GT(rb.metrics.noncompute_fraction, 0.9);
}

// The generated persistent program's flag protocol must stay bitwise-correct
// when devices run at wildly different speeds (up to ranks-x DRAM skew).
class DaceSkewSweep : public ::testing::TestWithParam<int> {};

TEST_P(DaceSkewSweep, PersistentProtocolCorrectUnderTimingSkew) {
  const int ranks = GetParam();
  vgpu::MachineSpec spec = hgx(ranks);
  for (int d = 0; d < ranks; ++d) {
    vgpu::DeviceSpec ds = spec.device;
    ds.dram_bw_gbps = spec.device.dram_bw_gbps / (1.0 + d);
    ds.grid_sync = spec.device.grid_sync * (d + 1);
    spec.device_overrides.push_back(ds);
  }
  auto prog = dacelite::make_jacobi2d(24, ranks, 6);
  dacelite::to_cpu_free(prog.sdfg);
  vgpu::Machine m(spec);
  vshmem::World w(m);
  ProgramData data(w, prog.sdfg, true);
  dacelite::execute_persistent(m, w, data, prog.sdfg, ExecOptions{});
  EXPECT_EQ(prog.gather(data), prog.reference(6));
}

INSTANTIATE_TEST_SUITE_P(Skew, DaceSkewSweep, ::testing::Values(2, 4, 8));

TEST(Determinism, GeneratedProgramsAreReproducible) {
  auto run_once = [] {
    auto prog = dacelite::make_jacobi2d(24, 4, 3);
    dacelite::to_cpu_free(prog.sdfg);
    vgpu::Machine m(hgx(4));
    vshmem::World w(m);
    ProgramData data(w, prog.sdfg, true);
    const auto r =
        dacelite::execute_persistent(m, w, data, prog.sdfg, ExecOptions{});
    return r.metrics.total;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
