// Tests for the src/check/ happens-before race & deadlock checker.
//
// Three groups:
//   * seeded-bug fixtures: tiny hand-written kernels with a known
//     synchronization defect (dropped signal wait, nbi source reuse without
//     quiet, missing barrier participant, mutual signal wait) must be flagged
//     with the right verdict and attribution — no false negatives;
//   * clean suite: every shipping stencil/CG/dacelite variant runs clean
//     under the checker — no false positives;
//   * non-perturbation: attaching the checker never changes simulated time;
//     metrics serialize byte-for-byte identically with it on and off.
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "check/detector.hpp"
#include "dacelite/exec.hpp"
#include "dacelite/frontend.hpp"
#include "dacelite/transforms.hpp"
#include "hostmpi/comm.hpp"
#include "sim/engine.hpp"
#include "exec/policy.hpp"
#include "solvers/cg.hpp"
#include "solvers/sparse_cg.hpp"
#include "stencil/problems.hpp"
#include "stencil/runner.hpp"
#include "stencil/variants.hpp"
#include "vgpu/kernel.hpp"
#include "vgpu/machine.hpp"
#include "vshmem/world.hpp"
#include "workloads/histogram/histogram.hpp"

namespace {

using check::Detector;
using check::Verdict;
using sim::Cmp;
using sim::Task;
using vgpu::KernelCtx;
using vgpu::LaunchConfig;
using vgpu::Machine;
using vgpu::MachineSpec;
using vshmem::SignalOp;
using vshmem::Sym;
using vshmem::World;

/// Runs one single-block kernel body per (device, fn) pair concurrently.
void run_on_devices(
    Machine& m,
    std::vector<std::pair<int, std::function<Task(KernelCtx&)>>> bodies) {
  for (auto& [dev, fn] : bodies) {
    std::vector<vgpu::BlockGroup> groups;
    groups.push_back(vgpu::BlockGroup{"test", 1, std::move(fn)});
    m.engine().spawn(vgpu::run_kernel(m, m.device(dev), 0, LaunchConfig{},
                                      std::move(groups)));
  }
  m.engine().run();
}

// --- seeded bugs: races --------------------------------------------------------

/// One signaled halo exchange, PE0 -> PE1. When `receiver_waits` the receiver
/// follows the paper's protocol (signal_wait_until before touching the halo);
/// otherwise it reads the inbox immediately — the classic dropped-wait bug.
Verdict run_halo_exchange(bool receiver_waits, std::string* report) {
  Machine m(MachineSpec::hgx_a100(2));
  Detector det;
  m.engine().set_observer(&det);
  World w(m);
  Sym<double> box = w.alloc<double>(2, "box");  // [0] inbox, [1] outbox
  auto sig = w.alloc_signals(1, "halo_ready");
  auto sender = [&](KernelCtx& k) -> Task {
    box.on(0)[1] = 7.0;
    k.obs_access(sim::MemRange::of(box.on(0), 1, 1), /*is_write=*/true,
                 "pack_outbox");
    co_await w.putmem_signal_nbi(k, box, /*src_off=*/1, /*dst_off=*/0,
                                 /*count=*/1, *sig, 0, 1, SignalOp::kSet, 1);
  };
  auto receiver = [&, receiver_waits](KernelCtx& k) -> Task {
    if (receiver_waits) {
      co_await w.signal_wait_until(k, *sig, 0, Cmp::kGe, 1);
    }
    k.obs_access(sim::MemRange::of(box.on(1), 0, 1), /*is_write=*/false,
                 "read_inbox");
    co_return;
  };
  run_on_devices(m, {{0, sender}, {1, receiver}});
  if (report != nullptr) *report = det.report_text();
  return det.verdict();
}

TEST(CheckRace, DroppedSignalWaitIsFlagged) {
  std::string report;
  EXPECT_EQ(run_halo_exchange(/*receiver_waits=*/false, &report),
            Verdict::kRace);
  // Attribution names the buffer and both sides of the conflict.
  EXPECT_NE(report.find("box"), std::string::npos) << report;
  EXPECT_NE(report.find("read_inbox"), std::string::npos) << report;
}

TEST(CheckRace, SignalWaitOrdersHaloRead) {
  std::string report;
  EXPECT_EQ(run_halo_exchange(/*receiver_waits=*/true, &report),
            Verdict::kPass)
      << report;
}

/// Non-blocking put, then the issuer reuses the SOURCE buffer. Without an
/// intervening quiet the payload may still be on the wire — a race the real
/// NVSHMEM spec also calls out.
Verdict run_source_reuse(bool with_quiet, std::string* report) {
  Machine m(MachineSpec::hgx_a100(2));
  Detector det;
  m.engine().set_observer(&det);
  World w(m);
  Sym<double> a = w.alloc<double>(16, "staging");
  auto body = [&, with_quiet](KernelCtx& k) -> Task {
    k.obs_access(sim::MemRange::of(a.on(0), 0, 4), /*is_write=*/true,
                 "fill_source");
    co_await w.putmem_nbi(k, a, /*src_off=*/0, /*dst_off=*/8, /*count=*/4, 1);
    if (with_quiet) co_await w.quiet(k);
    k.obs_access(sim::MemRange::of(a.on(0), 0, 4), /*is_write=*/true,
                 "reuse_source");
  };
  run_on_devices(m, {{0, body}});
  if (report != nullptr) *report = det.report_text();
  return det.verdict();
}

TEST(CheckRace, NbiSourceReuseWithoutQuietIsFlagged) {
  std::string report;
  EXPECT_EQ(run_source_reuse(/*with_quiet=*/false, &report), Verdict::kRace);
  EXPECT_NE(report.find("staging"), std::string::npos) << report;
  EXPECT_NE(report.find("reuse_source"), std::string::npos) << report;
}

TEST(CheckRace, QuietMakesSourceReuseSafe) {
  std::string report;
  EXPECT_EQ(run_source_reuse(/*with_quiet=*/true, &report), Verdict::kPass)
      << report;
}

/// Strided `iput` of a column paired with a `signal_op` but no `quiet()`.
/// The receiver side is safe in-model (same-wire ops are FIFO, so the signal
/// covers the payload — see DESIGN §8 on this over-approximation), but the
/// SENDER has acquired nothing: rewriting the just-sent column races with
/// the wire still reading it. `quiet()` between iput and reuse fixes it.
Verdict run_iput_signal(bool with_quiet, std::string* report) {
  Machine m(MachineSpec::hgx_a100(2));
  Detector det;
  m.engine().set_observer(&det);
  World w(m);
  Sym<double> grid = w.alloc<double>(16, "grid");  // 4x4 row-major
  auto sig = w.alloc_signals(1, "col_ready");
  auto sender = [&, with_quiet](KernelCtx& k) -> Task {
    co_await w.iput(k, grid, /*src_off=*/1, /*src_stride=*/4, /*dst_off=*/2,
                    /*dst_stride=*/4, /*count=*/4, 1);
    co_await w.signal_op(k, *sig, 0, 1, SignalOp::kSet, 1);
    if (with_quiet) co_await w.quiet(k);
    k.obs_access(sim::MemRange::of(grid.on(0), 1, 1), /*is_write=*/true,
                 "rewrite_sent_column");
  };
  auto receiver = [&](KernelCtx& k) -> Task {
    co_await w.signal_wait_until(k, *sig, 0, Cmp::kGe, 1);
    k.obs_access(sim::MemRange::of(grid.on(1), 2, 1), /*is_write=*/false,
                 "read_halo_column");
  };
  run_on_devices(m, {{0, sender}, {1, receiver}});
  if (report != nullptr) *report = det.report_text();
  return det.verdict();
}

TEST(CheckRace, IputWithSignalButNoQuietIsFlagged) {
  std::string report;
  EXPECT_EQ(run_iput_signal(/*with_quiet=*/false, &report), Verdict::kRace);
  EXPECT_NE(report.find("grid"), std::string::npos) << report;
  EXPECT_NE(report.find("rewrite_sent_column"), std::string::npos) << report;
}

TEST(CheckRace, QuietAfterIputMakesColumnReuseSafe) {
  std::string report;
  EXPECT_EQ(run_iput_signal(/*with_quiet=*/true, &report), Verdict::kPass)
      << report;
}

/// The histogram merge protocol, with its synchronization optionally broken:
/// a contributor PE puts its per-owner partial row into the owner's inbox and
/// signals; the owner folds the inbox into its bin slice. When `owner_waits`
/// the owner observes the signal first (the shipping protocol); otherwise the
/// two PEs update the same bins with no happens-before — the incoming put
/// races with the owner's merge.
Verdict run_histogram_merge(bool owner_waits, std::string* report) {
  Machine m(MachineSpec::hgx_a100(2));
  Detector det;
  m.engine().set_observer(&det);
  World w(m);
  constexpr std::size_t kBins = 8;
  Sym<double> bins = w.alloc<double>(kBins, "bin_slice");
  Sym<double> inbox = w.alloc<double>(kBins, "bin_inbox");
  auto sig = w.alloc_signals(1, "partial_ready");
  auto contributor = [&](KernelCtx& k) -> Task {
    // Pre-aggregate locally, then one signaled put of the touched range.
    k.obs_access(sim::MemRange::of(inbox.on(1), 0, kBins), /*is_write=*/true,
                 "accumulate_partials");
    co_await w.putmem_signal_nbi(k, inbox, /*src_off=*/0, /*dst_off=*/0,
                                 kBins, *sig, 0, 1, SignalOp::kSet, 0);
  };
  auto owner = [&, owner_waits](KernelCtx& k) -> Task {
    if (owner_waits) {
      co_await w.signal_wait_until(k, *sig, 0, Cmp::kGe, 1);
    }
    k.obs_access(sim::MemRange::of(inbox.on(0), 0, kBins), /*is_write=*/false,
                 "merge_read_inbox");
    k.obs_access(sim::MemRange::of(bins.on(0), 0, kBins), /*is_write=*/true,
                 "merge_bin_updates");
    co_return;
  };
  run_on_devices(m, {{0, owner}, {1, contributor}});
  if (report != nullptr) *report = det.report_text();
  return det.verdict();
}

TEST(CheckRace, HistogramMergeWithoutHappensBeforeIsFlagged) {
  std::string report;
  EXPECT_EQ(run_histogram_merge(/*owner_waits=*/false, &report),
            Verdict::kRace);
  // Attribution names the contended inbox and the merge-side access.
  EXPECT_NE(report.find("bin_inbox"), std::string::npos) << report;
  EXPECT_NE(report.find("merge_read_inbox"), std::string::npos) << report;
}

TEST(CheckRace, SignaledPartialRowOrdersHistogramMerge) {
  std::string report;
  EXPECT_EQ(run_histogram_merge(/*owner_waits=*/true, &report), Verdict::kPass)
      << report;
}

// --- seeded bugs: deadlocks ----------------------------------------------------

TEST(CheckDeadlock, MissingBarrierParticipantIsCounted) {
  Machine m(MachineSpec::hgx_a100(3));
  Detector det;
  m.engine().set_observer(&det);
  World w(m);
  auto arriver = [&](KernelCtx& k) -> Task { co_await w.sync_all(k); };
  auto absent = [](KernelCtx&) -> Task { co_return; };
  for (auto& [dev, fn] :
       std::vector<std::pair<int, std::function<Task(KernelCtx&)>>>{
           {0, arriver}, {1, arriver}, {2, absent}}) {
    std::vector<vgpu::BlockGroup> groups;
    groups.push_back(vgpu::BlockGroup{"test", 1, std::move(fn)});
    m.engine().spawn(vgpu::run_kernel(m, m.device(dev), 0, LaunchConfig{},
                                      std::move(groups)));
  }
  EXPECT_THROW(m.engine().run(), sim::DeadlockError);
  EXPECT_EQ(det.verdict(), Verdict::kDeadlock);
  const std::string report = det.report_text();
  EXPECT_NE(report.find("2 of 3 arrived"), std::string::npos) << report;
  EXPECT_NE(report.find("sync_all"), std::string::npos) << report;
}

TEST(CheckDeadlock, MutualSignalWaitCycleIsAttributed) {
  Machine m(MachineSpec::hgx_a100(2));
  Detector det;
  m.engine().set_observer(&det);
  World w(m);
  auto sig = w.alloc_signals(1, "turn");
  auto body = [&](int me) {
    return [&, me](KernelCtx& k) -> Task {
      const int other = 1 - me;
      // Round 1 completes: each PE signals its peer, so the analyzer learns
      // who produces each flag. Round 2's signals are never sent.
      co_await w.signal_op(k, *sig, 0, 1, SignalOp::kSet, other);
      co_await w.signal_wait_until(k, *sig, 0, Cmp::kGe, 1);
      co_await w.signal_wait_until(k, *sig, 0, Cmp::kGe, 2);
    };
  };
  for (int d : {0, 1}) {
    std::vector<vgpu::BlockGroup> groups;
    groups.push_back(vgpu::BlockGroup{"test", 1, body(d)});
    m.engine().spawn(vgpu::run_kernel(m, m.device(d), 0, LaunchConfig{},
                                      std::move(groups)));
  }
  EXPECT_THROW(m.engine().run(), sim::DeadlockError);
  EXPECT_EQ(det.verdict(), Verdict::kDeadlock);
  const std::string report = det.report_text();
  EXPECT_NE(report.find("wait-for cycle"), std::string::npos) << report;
  EXPECT_NE(report.find("turn"), std::string::npos) << report;
}

TEST(CheckDeadlock, LostSignalIsCalledOut) {
  Machine m(MachineSpec::hgx_a100(2));
  Detector det;
  m.engine().set_observer(&det);
  World w(m);
  auto sig = w.alloc_signals(1, "never_sent");
  auto waiter = [&](KernelCtx& k) -> Task {
    co_await w.signal_wait_until(k, *sig, 0, Cmp::kGe, 1);
  };
  std::vector<vgpu::BlockGroup> groups;
  groups.push_back(vgpu::BlockGroup{"test", 1, waiter});
  m.engine().spawn(
      vgpu::run_kernel(m, m.device(1), 0, LaunchConfig{}, std::move(groups)));
  EXPECT_THROW(m.engine().run(), sim::DeadlockError);
  const std::string report = det.report_text();
  EXPECT_NE(report.find("never updated by anyone"), std::string::npos)
      << report;
}

// --- clean suite: no false positives on shipping code --------------------------

constexpr stencil::Variant kAllSeven[] = {
    stencil::Variant::kBaselineCopy,    stencil::Variant::kBaselineOverlap,
    stencil::Variant::kBaselineP2P,     stencil::Variant::kBaselineNvshmem,
    stencil::Variant::kCpuFree,         stencil::Variant::kCpuFreePerks,
    stencil::Variant::kCpuFreeTwoKernels};

TEST(CheckClean, AllStencilVariantsRunClean) {
  for (stencil::Variant v : kAllSeven) {
    Detector det;
    stencil::Jacobi2D p;
    p.nx = 64;
    p.ny = 64;
    stencil::StencilConfig cfg;
    cfg.iterations = 6;
    cfg.persistent_blocks = 12;
    cfg.observer = &det;
    (void)stencil::run_jacobi2d(v, MachineSpec::hgx_a100(2), p, cfg);
    EXPECT_TRUE(det.clean())
        << stencil::variant_name(v) << ": " << det.report_text();
  }
}

TEST(CheckClean, BothCgVariantsRunClean) {
  for (const bool cpu_free : {false, true}) {
    Detector det;
    solvers::CgConfig cfg;
    cfg.nx = 24;
    cfg.ny = 24;
    cfg.max_iterations = 20;
    cfg.persistent_blocks = 12;
    cfg.observer = &det;
    const auto spec = MachineSpec::hgx_a100(2);
    (void)(cpu_free ? solvers::run_cg_cpufree(spec, cfg)
                    : solvers::run_cg_baseline(spec, cfg));
    EXPECT_TRUE(det.clean()) << (cpu_free ? "cpufree" : "baseline") << ": "
                             << det.report_text();
  }
}

TEST(CheckClean, DaceliteBackendsRunClean) {
  for (const bool cpu_free : {false, true}) {
    Detector det;
    auto prog = dacelite::make_jacobi1d(1u << 12, 2, 8);
    Machine m(MachineSpec::hgx_a100(2));
    m.engine().set_observer(&det);
    World w(m);
    dacelite::ExecOptions opt;
    if (cpu_free) {
      dacelite::to_cpu_free(prog.sdfg);
      dacelite::ProgramData data(w, prog.sdfg, true);
      (void)dacelite::execute_persistent(m, w, data, prog.sdfg, opt);
    } else {
      dacelite::apply_gpu_transform(prog.sdfg);
      hostmpi::Comm comm(m);
      dacelite::ProgramData data(w, prog.sdfg, true);
      (void)dacelite::execute_discrete(m, comm, data, prog.sdfg, opt);
    }
    EXPECT_TRUE(det.clean()) << (cpu_free ? "persistent" : "discrete") << ": "
                             << det.report_text();
  }
}

TEST(CheckClean, HistogramRunsCleanUnderEveryPolicyTriple) {
  const exec::Plan plans[] = {
      {exec::LaunchPolicy::kHostLoop, exec::CommPolicy::kStagedCopy,
       exec::SyncPolicy::kHostBarrier, "hist"},
      {exec::LaunchPolicy::kHostLoop, exec::CommPolicy::kOverlapStreams,
       exec::SyncPolicy::kHostBarrier, "hist"},
      {exec::LaunchPolicy::kHostLoop, exec::CommPolicy::kPeerStore,
       exec::SyncPolicy::kHostBarrier, "hist_p2p"},
      {exec::LaunchPolicy::kHostLoop, exec::CommPolicy::kSignaledPut,
       exec::SyncPolicy::kStreamSync, "hist_nvshmem"},
      {exec::LaunchPolicy::kPersistent, exec::CommPolicy::kSignaledPut,
       exec::SyncPolicy::kIterationFlags, "hist_cpufree"},
      {exec::LaunchPolicy::kPersistentPair, exec::CommPolicy::kSignaledPut,
       exec::SyncPolicy::kIterationFlags, "hist_cpufree"},
  };
  for (const exec::Plan& plan : plans) {
    // Skew 2 concentrates the updates: the hot owner's merge is exactly the
    // contended path the seeded-bug fixture above breaks on purpose.
    Detector det;
    workloads::HistogramConfig cfg;
    cfg.bins = 61;
    cfg.keys_per_round = 192;
    cfg.rounds = 3;
    cfg.skew = 2;
    cfg.threads_per_block = 128;
    cfg.persistent_blocks = 8;
    cfg.observer = &det;
    const workloads::HistogramResult out =
        workloads::run_histogram(MachineSpec::hgx_a100(2), cfg, plan);
    EXPECT_TRUE(det.clean()) << exec::name(plan.comm) << ": " << det.report_text();
    EXPECT_EQ(out.bins, workloads::histogram_reference(cfg, 2))
        << exec::name(plan.comm);
  }
}

TEST(CheckClean, SparseCgRunsCleanWithImbalancedRows) {
  const exec::Plan plans[] = {
      {exec::LaunchPolicy::kPersistent, exec::CommPolicy::kSignaledPut,
       exec::SyncPolicy::kIterationFlags, "sparse_cg_cpufree"},
      {exec::LaunchPolicy::kHostLoop, exec::CommPolicy::kStagedCopy,
       exec::SyncPolicy::kHostBarrier, "sparse_cg_baseline"},
  };
  for (const exec::Plan& plan : plans) {
    Detector det;
    solvers::SparseCgConfig cfg;
    cfg.nx = 16;
    cfg.ny = 16;
    cfg.max_iterations = 8;
    cfg.imbalance = 4.0;  // deliberate straggler rank
    cfg.observer = &det;
    (void)solvers::run_sparse_cg(MachineSpec::hgx_a100(2), cfg, plan);
    EXPECT_TRUE(det.clean()) << exec::name(plan.comm) << ": " << det.report_text();
  }
}

// --- non-perturbation -----------------------------------------------------------

TEST(CheckNonPerturbation, StencilMetricsBitIdenticalWithCheckerAttached) {
  for (stencil::Variant v :
       {stencil::Variant::kCpuFree, stencil::Variant::kBaselineOverlap}) {
    auto run = [v](sim::Observer* obs) {
      stencil::Jacobi2D p;
      p.nx = 64;
      p.ny = 64;
      stencil::StencilConfig cfg;
      cfg.iterations = 10;
      cfg.persistent_blocks = 12;
      cfg.observer = obs;
      return stencil::run_jacobi2d(v, MachineSpec::hgx_a100(2), p, cfg);
    };
    const auto off = run(nullptr);
    Detector det;
    const auto on = run(&det);
    EXPECT_TRUE(det.clean()) << det.report_text();
    EXPECT_EQ(cpufree::to_json(off.result.metrics),
              cpufree::to_json(on.result.metrics))
        << stencil::variant_name(v)
        << ": attaching the checker changed simulated behaviour";
    EXPECT_EQ(off.result.final_parity, on.result.final_parity);
    EXPECT_EQ(off.verified, on.verified);
  }
}

TEST(CheckNonPerturbation, CgMetricsBitIdenticalWithCheckerAttached) {
  auto run = [](sim::Observer* obs) {
    solvers::CgConfig cfg;
    cfg.nx = 24;
    cfg.ny = 24;
    cfg.max_iterations = 20;
    cfg.persistent_blocks = 12;
    cfg.observer = obs;
    return solvers::run_cg_cpufree(MachineSpec::hgx_a100(2), cfg);
  };
  const auto off = run(nullptr);
  Detector det;
  const auto on = run(&det);
  EXPECT_TRUE(det.clean()) << det.report_text();
  EXPECT_EQ(cpufree::to_json(off.metrics), cpufree::to_json(on.metrics));
  EXPECT_EQ(off.final_rr, on.final_rr);
  EXPECT_EQ(off.iterations_run, on.iterations_run);
}

TEST(CheckNonPerturbation, DaceliteDiscreteBitIdenticalWithCheckerAttached) {
  // The discrete backend drives host streams, events and hostmpi — the
  // densest instrumentation paths — so it is the most likely place for an
  // observer hook to accidentally cost simulated time.
  auto run = [](sim::Observer* obs) {
    auto prog = dacelite::make_jacobi1d(1u << 12, 2, 8);
    dacelite::apply_gpu_transform(prog.sdfg);
    Machine m(MachineSpec::hgx_a100(2));
    m.engine().set_observer(obs);
    World w(m);
    hostmpi::Comm comm(m);
    dacelite::ExecOptions opt;
    dacelite::ProgramData data(w, prog.sdfg, true);
    return dacelite::execute_discrete(m, comm, data, prog.sdfg, opt);
  };
  const auto off = run(nullptr);
  Detector det;
  const auto on = run(&det);
  EXPECT_TRUE(det.clean()) << det.report_text();
  EXPECT_EQ(cpufree::to_json(off.metrics), cpufree::to_json(on.metrics));
  EXPECT_EQ(off.iterations, on.iterations);
}

}  // namespace
