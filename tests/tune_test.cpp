// Pass-framework + autotuner suite (label: tune).
//
// Locks the three contracts the tuner rests on:
//  1. Recipe replay — Pipeline::apply of Recipe::cpu_free_default() is
//     byte-identical to the historical free-function transform chain, and
//     recipes round-trip through serialize/parse.
//  2. Determinism — candidate enumeration, ranking, and the whole tuning
//     report are bit-identical across sweep worker counts and sharded-engine
//     thread counts.
//  3. The prototype-then-validate loop — on the paper's jacobi2d workload
//     the tuner finds a validated candidate strictly faster than the
//     shipping default, with bitwise-verified numerics and a clean detector.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "check/detector.hpp"
#include "dacelite/exec.hpp"
#include "dacelite/frontend.hpp"
#include "dacelite/pass.hpp"
#include "exec/policy.hpp"
#include "tune/rollout.hpp"
#include "tune/space.hpp"
#include "tune/tuner.hpp"
#include "vshmem/world.hpp"

namespace {

using dacelite::ExecOptions;
using dacelite::ExpansionChoice;
using dacelite::Pipeline;
using dacelite::ProgramData;
using dacelite::Recipe;
using dacelite::Sdfg;
using dacelite::ValidationError;

vgpu::MachineSpec hgx(int gpus) { return vgpu::MachineSpec::hgx_a100(gpus); }

// Structural equality deep enough to distinguish every transform effect:
// array storage, state/node counts, persistent flags, barrier placement.
void expect_same_shape(const Sdfg& a, const Sdfg& b) {
  EXPECT_EQ(a.gpu, b.gpu);
  EXPECT_EQ(a.persistent, b.persistent);
  EXPECT_EQ(a.barrier_after, b.barrier_after);
  ASSERT_EQ(a.arrays.size(), b.arrays.size());
  for (const auto& [arr_name, desc] : a.arrays) {
    ASSERT_TRUE(b.arrays.count(arr_name));
    EXPECT_EQ(desc.storage, b.arrays.at(arr_name).storage) << arr_name;
  }
  ASSERT_EQ(a.body.size(), b.body.size());
  for (std::size_t i = 0; i < a.body.size(); ++i) {
    EXPECT_EQ(a.body[i].nodes.size(), b.body[i].nodes.size()) << "state " << i;
  }
}

// --- 1. recipe replay ---------------------------------------------------------

TEST(RecipeReplay, DefaultRecipeMatchesFreeFunctionChainByteForByte) {
  auto via_chain = dacelite::make_jacobi2d(64, 4, 6);
  dacelite::apply_gpu_transform(via_chain.sdfg);
  dacelite::apply_mpi_to_nvshmem(via_chain.sdfg);
  dacelite::apply_nvshmem_arrays(via_chain.sdfg);
  dacelite::apply_persistent(via_chain.sdfg);

  auto via_recipe = dacelite::make_jacobi2d(64, 4, 6);
  Pipeline().apply(via_recipe.sdfg, Recipe::cpu_free_default());

  expect_same_shape(via_chain.sdfg, via_recipe.sdfg);

  // Same generated program: bit-identical simulated timeline AND numerics.
  auto run = [](dacelite::Jacobi2DProgram& prog) {
    vgpu::Machine m(hgx(4));
    vshmem::World w(m);
    ProgramData data(w, prog.sdfg, /*functional=*/true);
    const auto r =
        dacelite::execute_persistent(m, w, data, prog.sdfg, ExecOptions{});
    return std::make_pair(r.metrics.total, prog.gather(data));
  };
  const auto [chain_total, chain_values] = run(via_chain);
  const auto [recipe_total, recipe_values] = run(via_recipe);
  EXPECT_EQ(chain_total, recipe_total);
  EXPECT_EQ(chain_values, recipe_values);
}

TEST(RecipeReplay, ToCpuFreeIsTheCanonicalRecipe) {
  auto a = dacelite::make_jacobi2d(48, 2, 4);
  dacelite::to_cpu_free(a.sdfg);
  auto b = dacelite::make_jacobi2d(48, 2, 4);
  Pipeline().apply(b.sdfg, Recipe::cpu_free_default());
  expect_same_shape(a.sdfg, b.sdfg);
}

TEST(RecipeReplay, PipelineRecordsAppliedStepsInOrder) {
  auto prog = dacelite::make_jacobi2d(64, 4, 6);
  const auto applied = Pipeline().apply(prog.sdfg, Recipe::cpu_free_default());
  ASSERT_EQ(applied.size(), 4u);
  EXPECT_EQ(applied[0].step.pass, "gpu_transform");
  EXPECT_EQ(applied[1].step.pass, "mpi_to_nvshmem");
  EXPECT_EQ(applied[2].step.pass, "nvshmem_array");
  EXPECT_EQ(applied[3].step.pass, "persistent");
  for (const auto& step : applied) {
    EXPECT_GT(step.changed, 0) << step.step.pass;
  }
}

TEST(RecipeReplay, InapplicableStepThrows) {
  // persistent requires a GPU-transformed SDFG; replaying it first must be a
  // loud recipe bug, not a silent no-op.
  auto prog = dacelite::make_jacobi2d(32, 2, 2);
  Recipe r;
  r.add("persistent");
  EXPECT_THROW(Pipeline().apply(prog.sdfg, r), ValidationError);
}

TEST(RecipeReplay, UnknownPassAndUnknownParamThrow) {
  auto prog = dacelite::make_jacobi2d(32, 2, 2);
  Recipe unknown_pass;
  unknown_pass.add("loop_unroll");
  EXPECT_THROW(Pipeline().apply(prog.sdfg, unknown_pass), ValidationError);

  Recipe bad_param;
  bad_param.add("gpu_transform", {{"vectorize", "on"}});
  EXPECT_THROW(Pipeline().apply(prog.sdfg, bad_param), ValidationError);

  Recipe bad_value;
  bad_value.add("gpu_transform")
      .add("persistent", {{"barriers", "psychic"}});
  EXPECT_THROW(Pipeline().apply(prog.sdfg, bad_value), ValidationError);
}

TEST(RecipeReplay, ConservativeBarrierParamMatchesAblationFlag) {
  auto via_param = dacelite::make_jacobi2d(64, 4, 6);
  Recipe r;
  r.add("gpu_transform")
      .add("mpi_to_nvshmem")
      .add("nvshmem_array")
      .add("persistent", {{"barriers", "conservative"}});
  Pipeline().apply(via_param.sdfg, r);
  for (std::size_t i = 0; i < via_param.sdfg.body.size(); ++i) {
    EXPECT_TRUE(via_param.sdfg.barrier_after[i]) << "state " << i;
  }
}

// --- serialize / parse --------------------------------------------------------

TEST(RecipeSerialize, RoundTripsTheBuiltinRecipes) {
  for (const Recipe& r : {Recipe::cpu_free_default(), Recipe::gpu_baseline()}) {
    EXPECT_EQ(Recipe::parse(r.serialize()), r) << r.serialize();
  }
}

TEST(RecipeSerialize, RoundTripsParamsAndExecutionKnobs) {
  Recipe r;
  r.add("gpu_transform")
      .add("map_fusion")
      .add("mpi_to_nvshmem")
      .add("nvshmem_array")
      .add("persistent", {{"barriers", "conservative"}});
  r.persistent_blocks = 216;
  r.threads_per_block = 512;
  r.expansion = ExpansionChoice::kStridedIputSignal;
  const std::string text = r.serialize();
  EXPECT_EQ(text,
            "gpu_transform >> map_fusion >> mpi_to_nvshmem >> nvshmem_array"
            " >> persistent(barriers=conservative)"
            " @ blocks=216 tpb=512 expansion=strided_iput");
  EXPECT_EQ(Recipe::parse(text), r);
}

TEST(RecipeSerialize, ParseRejectsMalformedText) {
  // No execution-knob suffix.
  EXPECT_THROW(Recipe::parse("gpu_transform"), ValidationError);
  // Non-numeric / unknown knobs.
  EXPECT_THROW(Recipe::parse("gpu_transform @ blocks=x tpb=1024 expansion=auto"),
               ValidationError);
  EXPECT_THROW(Recipe::parse("gpu_transform @ blocks=0 tpb=1024 expansion=warp"),
               ValidationError);
  EXPECT_THROW(Recipe::parse("gpu_transform @ blocks=0 tpb=1024"),
               ValidationError);
  EXPECT_THROW(
      Recipe::parse("gpu_transform @ blocks=0 tpb=1024 expansion=auto gamma=1"),
      ValidationError);
  // Step-list syntax errors.
  EXPECT_THROW(Recipe::parse(" >> persistent @ blocks=0 tpb=1 expansion=auto"),
               ValidationError);
  EXPECT_THROW(
      Recipe::parse("persistent(barriers @ blocks=0 tpb=1 expansion=auto"),
      ValidationError);
}

// --- 2. enumeration + determinism ---------------------------------------------

tune::Workload j2d_workload() {
  tune::Workload w;
  w.kind = tune::WorkloadKind::kJacobi2D;
  w.gx = w.gy = 800;
  w.ranks = 4;
  w.iterations = 10;
  return w;
}

TEST(TuneSpace, EnumerationIsDeterministicWithUniqueIds) {
  const auto a = tune::enumerate_candidates(j2d_workload(), hgx(4));
  const auto b = tune::enumerate_candidates(j2d_workload(), hgx(4));
  ASSERT_EQ(a.size(), b.size());
  ASSERT_FALSE(a.empty());
  std::vector<std::string> ids;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id(), b[i].id()) << i;
    EXPECT_EQ(a[i].recipe, b[i].recipe) << i;
    ids.push_back(a[i].id());
  }
  std::vector<std::string> sorted = ids;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end())
      << "candidate ids must be unique";
}

TEST(TuneSpace, MaxCandidatesKeepsTheEnumerationPrefix) {
  const auto full = tune::enumerate_candidates(j2d_workload(), hgx(4));
  tune::SpaceOptions opt;
  opt.max_candidates = 5;
  const auto prefix = tune::enumerate_candidates(j2d_workload(), hgx(4), opt);
  ASSERT_EQ(prefix.size(), 5u);
  for (std::size_t i = 0; i < prefix.size(); ++i) {
    EXPECT_EQ(prefix[i].id(), full[i].id()) << i;
  }
}

TEST(TuneSpace, PartitionAxisOnlyFor2D) {
  const auto two_d = tune::enumerate_candidates(j2d_workload(), hgx(4));
  bool saw_px = false;
  for (const auto& c : two_d) saw_px |= c.px > 1;
  EXPECT_TRUE(saw_px) << "2D space must explore partition shapes";

  tune::Workload one_d;
  one_d.kind = tune::WorkloadKind::kJacobi1D;
  one_d.gx = 65536;
  one_d.ranks = 4;
  one_d.iterations = 10;
  for (const auto& c : tune::enumerate_candidates(one_d, hgx(4))) {
    EXPECT_EQ(c.px, 0) << c.id();
  }
}

TEST(TuneRollout, PredictionIsDeterministicAndChargesPersistentWork) {
  auto prog = dacelite::make_jacobi2d(800, 4, 10);
  dacelite::to_cpu_free(prog.sdfg);
  ExecOptions opt;
  opt.persistent_blocks = exec::resolve_persistent_blocks(0, hgx(4), 1024);
  const sim::Nanos p1 = tune::predict_total(prog.sdfg, hgx(4), opt, 10);
  const sim::Nanos p2 = tune::predict_total(prog.sdfg, hgx(4), opt, 10);
  EXPECT_EQ(p1, p2);
  EXPECT_GT(p1, 0);
  // More iterations must cost strictly more.
  EXPECT_GT(tune::predict_total(prog.sdfg, hgx(4), opt, 20), p1);
}

tune::TuneOptions fast_tune_options(int sweep_threads, int pdes_threads) {
  tune::TuneOptions opt;
  opt.top_k = 3;
  opt.max_candidates = 12;  // deterministic enumeration prefix, CI-sized
  opt.sweep_threads = sweep_threads;
  opt.pdes_threads = pdes_threads;
  return opt;
}

TEST(Tuner, ReportIsBitIdenticalAcrossThreadCounts) {
  const auto serial = tune::tune(j2d_workload(), hgx(4), fast_tune_options(1, 1));
  const auto threaded =
      tune::tune(j2d_workload(), hgx(4), fast_tune_options(4, 2));

  EXPECT_EQ(serial.space_size, threaded.space_size);
  ASSERT_EQ(serial.ranked.size(), threaded.ranked.size());
  for (std::size_t i = 0; i < serial.ranked.size(); ++i) {
    EXPECT_EQ(serial.ranked[i].candidate.id(), threaded.ranked[i].candidate.id())
        << i;
    EXPECT_EQ(serial.ranked[i].predicted, threaded.ranked[i].predicted) << i;
    EXPECT_EQ(serial.ranked[i].validated, threaded.ranked[i].validated) << i;
    EXPECT_EQ(serial.ranked[i].measured, threaded.ranked[i].measured) << i;
    EXPECT_EQ(serial.ranked[i].verified, threaded.ranked[i].verified) << i;
    EXPECT_EQ(serial.ranked[i].check_clean, threaded.ranked[i].check_clean)
        << i;
  }
  EXPECT_EQ(serial.baseline.measured, threaded.baseline.measured);
  ASSERT_EQ(serial.records.size(), threaded.records.size());
  for (std::size_t i = 0; i < serial.records.size(); ++i) {
    EXPECT_EQ(serial.records[i].id, threaded.records[i].id) << i;
    EXPECT_EQ(serial.records[i].out.values, threaded.records[i].out.values)
        << i;
  }
}

// --- 3. the acceptance loop ---------------------------------------------------

TEST(Tuner, FindsValidatedRecipeStrictlyFasterThanDefault) {
  const auto report = tune::tune(j2d_workload(), hgx(4), fast_tune_options(1, 1));

  ASSERT_TRUE(report.baseline.validated);
  ASSERT_TRUE(report.baseline.verified);
  ASSERT_TRUE(report.baseline.check_clean);
  EXPECT_GT(report.baseline.measured, 0);

  const tune::CandidateResult* best = report.best();
  ASSERT_NE(best, nullptr) << "no validated candidate survived";
  EXPECT_TRUE(best->verified);
  EXPECT_TRUE(best->check_clean);
  EXPECT_LT(best->measured, report.baseline.measured)
      << "tuner must beat the shipping default on this workload";
  // The known winner: full occupancy (216 cooperative blocks) on the strip
  // partition — software tiling at 160k points/rank favours more resident
  // threads. Lock the blocks axis; the exact px may legitimately tie.
  EXPECT_EQ(best->persistent_blocks,
            exec::resolve_persistent_blocks(216, hgx(4), 1024));
}

TEST(Tuner, ValidationOffScoresOnly) {
  tune::TuneOptions opt = fast_tune_options(1, 1);
  opt.validate = false;
  const auto report = tune::tune(j2d_workload(), hgx(4), opt);
  EXPECT_FALSE(report.baseline.validated);
  EXPECT_EQ(report.best(), nullptr);
  EXPECT_TRUE(report.records.empty());
  for (const auto& c : report.ranked) EXPECT_FALSE(c.validated);
  // Still fully ranked.
  for (std::size_t i = 1; i < report.ranked.size(); ++i) {
    EXPECT_LE(report.ranked[i - 1].predicted, report.ranked[i].predicted);
  }
}

// --- expansion audit ----------------------------------------------------------

// The resolved-expansion audit on ExecResult is how the tuner (and the bench
// JSON) attribute performance to a put strategy; forced choices must be
// reported as what was actually generated, including degradations.
TEST(ExpansionAudit, ForcedChoicesReportGeneratedExpansions) {
  auto run_with = [](ExpansionChoice choice) {
    auto prog = dacelite::make_jacobi2d(64, 128, 4, 6);
    dacelite::to_cpu_free(prog.sdfg);
    vgpu::Machine m(hgx(4));
    vshmem::World w(m);
    ProgramData data(w, prog.sdfg, true);
    ExecOptions opt;
    opt.expansion = choice;
    const auto r =
        dacelite::execute_persistent(m, w, data, prog.sdfg, opt);
    EXPECT_EQ(prog.gather(data), prog.reference(6)) << name(choice);
    return r.put_expansion;
  };
  // 2x2 grid: north/south halos are contiguous, east/west are strided.
  EXPECT_EQ(run_with(ExpansionChoice::kAuto),
            "contiguous_signal+strided_iput");
  EXPECT_EQ(run_with(ExpansionChoice::kStridedIputSignal), "strided_iput");
  // single_p on multi-element transfers degrades to per-element word stores,
  // which generate (and are audited as) the strided iput expansion — the
  // report shows what was emitted, not what was requested.
  EXPECT_EQ(run_with(ExpansionChoice::kSingleElementP), "strided_iput");
}

TEST(ExpansionAudit, ForcedExpansionsStayRaceFree) {
  for (const ExpansionChoice choice :
       {ExpansionChoice::kAuto, ExpansionChoice::kStridedIputSignal,
        ExpansionChoice::kSingleElementP}) {
    auto prog = dacelite::make_jacobi2d(64, 128, 4, 6);
    dacelite::to_cpu_free(prog.sdfg);
    vgpu::Machine m(hgx(4));
    check::Detector det;
    m.engine().set_observer(&det);
    vshmem::World w(m);
    ProgramData data(w, prog.sdfg, true);
    ExecOptions opt;
    opt.expansion = choice;
    dacelite::execute_persistent(m, w, data, prog.sdfg, opt);
    EXPECT_EQ(det.verdict(), check::Verdict::kPass)
        << name(choice) << ": " << det.report_text();
  }
}

}  // namespace
