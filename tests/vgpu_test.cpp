// Unit tests for the virtual GPU substrate: cost model, machine/memory/peer
// access, interconnect timing and contention, stream FIFO semantics, events,
// kernel launch, cooperative grid sync, and host API costs.
#include <gtest/gtest.h>

#include <vector>

#include "sim/combinators.hpp"
#include "vgpu/costmodel.hpp"
#include "vgpu/host.hpp"
#include "vgpu/kernel.hpp"
#include "vgpu/machine.hpp"
#include "vgpu/stream.hpp"

namespace {

using sim::Nanos;
using sim::Task;
using vgpu::BlockGroup;
using vgpu::DeviceSpec;
using vgpu::HostApiCosts;
using vgpu::HostCtx;
using vgpu::KernelCtx;
using vgpu::LaunchConfig;
using vgpu::Machine;
using vgpu::MachineSpec;
using vgpu::MemBlock;
using vgpu::Stream;
using vgpu::TransferKind;

/// A machine with round-number costs so expected times are exact:
/// link: 1 GB/s (1 byte == 1 ns), 100 ns host-initiated latency, 50 ns
/// device-initiated, 10 ns put issue; DRAM 2 GB/s at 100% efficiency.
MachineSpec simple_spec(int devices) {
  MachineSpec s;
  s.num_devices = devices;
  s.device.dram_bw_gbps = 2.0;
  s.device.dram_efficiency = 1.0;
  s.device.grid_sync = 5;
  s.device.spin_poll = 1;
  s.host = HostApiCosts::zero();
  s.link.bw_gbps = 1.0;
  s.link.host_initiated_latency = 100;
  s.link.device_initiated_latency = 50;
  s.link.device_put_issue = 10;
  return s;
}

TEST(CostModel, A100CooperativeBlockLimit) {
  const DeviceSpec a100 = DeviceSpec::a100();
  // 1024-thread blocks: 2048/1024 = 2 per SM * 108 SMs.
  EXPECT_EQ(a100.max_cooperative_blocks(1024), 216);
  EXPECT_EQ(a100.max_cooperative_blocks(256), 8 * 108);
  // Small blocks hit the per-SM resident-block limit (32 on A100) before the
  // thread-count limit: 32-thread blocks give 32 per SM, not 2048/32 = 64.
  EXPECT_EQ(a100.max_cooperative_blocks(32), 32 * 108);
  EXPECT_EQ(a100.max_cooperative_blocks(1), 32 * 108);
  EXPECT_EQ(a100.max_cooperative_blocks(0), 0);
}

TEST(CostModel, SubNanosecondTransfersChargeAtLeastOneNano) {
  vgpu::LinkSpec l;
  l.bw_gbps = 250.0;
  // 4 bytes at 250 GB/s is 0.016 ns of wire time; it must not truncate to a
  // free transfer.
  EXPECT_EQ(l.wire_time(4.0), 1);
  EXPECT_EQ(l.wire_time(0.0), 0);
  EXPECT_EQ(l.staging_time(1.0), 1);
  EXPECT_EQ(l.staging_time(0.0), 0);
  DeviceSpec d;
  d.dram_bw_gbps = 1000.0;
  d.dram_efficiency = 1.0;
  EXPECT_EQ(d.dram_time(8.0), 1);
  // Fractional times round up, never down: 1.5 ns -> 2 ns.
  EXPECT_EQ(d.dram_time(1500.0), 2);
}

TEST(CostModel, DramTimeScalesWithBytesAndFraction) {
  DeviceSpec d;
  d.dram_bw_gbps = 1000.0;  // 1000 bytes/ns
  d.dram_efficiency = 1.0;
  EXPECT_EQ(d.dram_time(1e6), 1000);
  EXPECT_EQ(d.dram_time(1e6, 0.5), 2000);
  EXPECT_EQ(d.dram_time(0.0), 0);
  EXPECT_EQ(d.dram_time(-5.0), 0);
}

TEST(CostModel, WireTime) {
  vgpu::LinkSpec l;
  l.bw_gbps = 250.0;
  EXPECT_EQ(l.wire_time(250.0), 1);
  EXPECT_EQ(l.wire_time(2.5e6), 10'000);
}

TEST(CostModel, HgxPresetHasAllToAllDefaults) {
  const MachineSpec s = MachineSpec::hgx_a100(8);
  EXPECT_EQ(s.num_devices, 8);
  EXPECT_EQ(s.device.sm_count, 108);
  EXPECT_GT(s.link.bw_gbps, 0.0);
  EXPECT_GT(s.host.kernel_launch, 0);
}

TEST(Machine, RejectsNonPositiveDeviceCount) {
  EXPECT_THROW(Machine(MachineSpec::hgx_a100(0)), std::invalid_argument);
}

TEST(Machine, AllocArrayIsZeroInitializedAndTagged) {
  Machine m(simple_spec(2));
  auto arr = m.alloc_array<double>(1, 16, "u");
  EXPECT_EQ(arr.size(), 16u);
  EXPECT_EQ(arr.device(), 1);
  for (double v : arr.span()) EXPECT_EQ(v, 0.0);
  arr[3] = 2.5;
  EXPECT_EQ(arr[3], 2.5);
}

TEST(Machine, AllocOnBadDeviceThrows) {
  Machine m(simple_spec(2));
  EXPECT_THROW(m.alloc_block(2, 8, "x"), std::out_of_range);
  EXPECT_THROW(m.alloc_block(-1, 8, "x"), std::out_of_range);
}

TEST(Machine, TransferWithoutPeerAccessThrows) {
  Machine m(simple_spec(2));
  m.engine().spawn(m.transfer(0, 1, 100, TransferKind::kDeviceInitiated, 0, "t"));
  EXPECT_THROW(m.engine().run(), std::logic_error);
}

TEST(Machine, PeerAccessIsDirectional) {
  Machine m(simple_spec(2));
  m.enable_peer_access(0, 1);
  EXPECT_TRUE(m.peer_enabled(0, 1));
  EXPECT_FALSE(m.peer_enabled(1, 0));
}

TEST(Machine, DeviceInitiatedTransferTiming) {
  Machine m(simple_spec(2));
  m.enable_all_peer_access();
  Nanos done = -1;
  m.engine().spawn([](Machine& mm, Nanos& out) -> Task {
    // issue 10 + wire 200 + latency 50 = 260.
    co_await mm.transfer(0, 1, 200, TransferKind::kDeviceInitiated, 0, "t");
    out = mm.engine().now();
  }(m, done));
  m.engine().run();
  EXPECT_EQ(done, 260);
}

TEST(Machine, HostInitiatedTransferTiming) {
  Machine m(simple_spec(2));
  m.enable_all_peer_access();
  Nanos done = -1;
  m.engine().spawn([](Machine& mm, Nanos& out) -> Task {
    // wire 200 + latency 100 = 300 (no issue cost on host path).
    co_await mm.transfer(0, 1, 200, TransferKind::kHostInitiated, 0, "t");
    out = mm.engine().now();
  }(m, done));
  m.engine().run();
  EXPECT_EQ(done, 300);
}

TEST(Machine, SameLinkTransfersSerialize) {
  Machine m(simple_spec(2));
  m.enable_all_peer_access();
  std::vector<Nanos> done;
  auto sender = [](Machine& mm, std::vector<Nanos>& out) -> Task {
    co_await mm.transfer(0, 1, 1000, TransferKind::kHostInitiated, 0, "a");
    out.push_back(mm.engine().now());
  };
  m.engine().spawn(sender(m, done));
  m.engine().spawn(sender(m, done));
  m.engine().run();
  ASSERT_EQ(done.size(), 2u);
  // First: wire [0,1000] + 100 latency = 1100. Second waits for the wire:
  // wire [1000,2000] + 100 = 2100.
  EXPECT_EQ(done[0], 1100);
  EXPECT_EQ(done[1], 2100);
}

TEST(Machine, DistinctLinksDoNotContend) {
  Machine m(simple_spec(3));
  m.enable_all_peer_access();
  std::vector<Nanos> done;
  auto sender = [](Machine& mm, std::vector<Nanos>& out, int src, int dst) -> Task {
    co_await mm.transfer(src, dst, 1000, TransferKind::kHostInitiated, 0, "x");
    out.push_back(mm.engine().now());
  };
  m.engine().spawn(sender(m, done, 0, 1));
  m.engine().spawn(sender(m, done, 0, 2));  // different directed link
  m.engine().spawn(sender(m, done, 1, 0));  // reverse direction: own link
  m.engine().run();
  ASSERT_EQ(done.size(), 3u);
  for (Nanos t : done) EXPECT_EQ(t, 1100);
}

TEST(Machine, DeliverRunsAtArrival) {
  Machine m(simple_spec(2));
  m.enable_all_peer_access();
  auto src = m.alloc_array<int>(0, 4, "src");
  auto dst = m.alloc_array<int>(1, 4, "dst");
  src[0] = 42;
  Nanos delivered_at = -1;
  m.engine().spawn([](Machine& mm, vgpu::DeviceArray<int> s,
                      vgpu::DeviceArray<int> d, Nanos& at) -> Task {
    co_await mm.transfer(0, 1, 4, TransferKind::kDeviceInitiated, 0, "t",
                         [s, d, &at, &mm]() mutable {
                           d[0] = s[0];
                           at = mm.engine().now();
                         });
  }(m, src, dst, delivered_at));
  m.engine().run();
  EXPECT_EQ(dst[0], 42);
  EXPECT_EQ(delivered_at, 10 + 4 + 50);
}

TEST(Machine, LocalTransferChargesDramOnly) {
  Machine m(simple_spec(1));
  Nanos done = -1;
  m.engine().spawn([](Machine& mm, Nanos& out) -> Task {
    // 2 GB/s DRAM, 2x bytes (read+write): 100 bytes -> 100 ns.
    co_await mm.transfer(0, 0, 100, TransferKind::kDeviceInitiated, 0, "local");
    out = mm.engine().now();
  }(m, done));
  m.engine().run();
  EXPECT_EQ(done, 100);
}

TEST(Machine, HostBarrierJoinsAllHostThreads) {
  MachineSpec spec = simple_spec(3);
  spec.host.host_barrier = 7;
  Machine m(spec);
  std::vector<Nanos> after;
  m.run_host_threads([&](int dev) -> Task {
    co_await m.engine().delay(dev * 100);
    co_await m.host_barrier();
    after.push_back(m.engine().now());
  });
  ASSERT_EQ(after.size(), 3u);
  for (Nanos t : after) EXPECT_EQ(t, 207);  // last arrival 200 + barrier 7
}

TEST(Stream, OpsRunInFifoOrder) {
  Machine m(simple_spec(1));
  Stream& s = m.device(0).create_stream();
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    s.enqueue([&m, &order, i]() -> Task {
      // Later ops get shorter delays; FIFO must still order them.
      co_await m.engine().delay(30 - i * 10);
      order.push_back(i);
    });
  }
  m.engine().run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_TRUE(s.idle());
}

TEST(Stream, TwoStreamsRunConcurrently) {
  Machine m(simple_spec(1));
  Stream& a = m.device(0).create_stream();
  Stream& b = m.device(0).create_stream();
  std::vector<Nanos> done;
  auto op = [&m, &done]() -> Task {
    co_await m.engine().delay(100);
    done.push_back(m.engine().now());
  };
  a.enqueue(op);
  b.enqueue(op);
  m.engine().run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0], 100);
  EXPECT_EQ(done[1], 100);
}

TEST(Event, CrossStreamDependency) {
  MachineSpec spec = simple_spec(1);
  Machine m(spec);
  Stream& a = m.device(0).create_stream();
  Stream& b = m.device(0).create_stream();
  vgpu::Event ev(m.engine());
  Nanos b_op_ran_at = -1;
  m.run_host_threads([&](int) -> Task {
    HostCtx h(m, 0);
    // Stream a: 100 ns of work, then record.
    a.enqueue([&m]() -> Task { co_await m.engine().delay(100); });
    co_await h.record_event(a, ev);
    // Stream b waits on the event, then runs.
    co_await h.stream_wait_event(b, ev);
    b.enqueue([&m, &b_op_ran_at]() -> Task {
      b_op_ran_at = m.engine().now();
      co_return;
    });
    co_await h.sync_stream(b);
  });
  EXPECT_EQ(b_op_ran_at, 100);
}

TEST(Event, SyncEventWaitsForPublication) {
  Machine m(simple_spec(1));
  Stream& s = m.device(0).create_stream();
  vgpu::Event ev(m.engine());
  Nanos host_resumed = -1;
  m.run_host_threads([&](int) -> Task {
    HostCtx h(m, 0);
    s.enqueue([&m]() -> Task { co_await m.engine().delay(250); });
    co_await h.record_event(s, ev);
    co_await h.sync_event(ev);
    host_resumed = m.engine().now();
  });
  EXPECT_EQ(host_resumed, 250);
}

TEST(Event, ElapsedTimeBetweenRecords) {
  Machine m(simple_spec(1));
  Stream& s = m.device(0).create_stream();
  vgpu::Event start(m.engine());
  vgpu::Event stop(m.engine());
  m.run_host_threads([&](int) -> Task {
    HostCtx h(m, 0);
    co_await h.record_event(s, start);
    s.enqueue([&m]() -> Task { co_await m.engine().delay(2'000'000); });
    co_await h.record_event(s, stop);
    co_await h.sync_event(stop);
  });
  EXPECT_DOUBLE_EQ(vgpu::Event::elapsed_ms(start, stop), 2.0);
}

TEST(Event, ElapsedBeforePublishThrows) {
  Machine m(simple_spec(1));
  vgpu::Event a(m.engine());
  vgpu::Event b(m.engine());
  EXPECT_THROW(static_cast<void>(vgpu::Event::elapsed_ms(a, b)),
               std::logic_error);
}

TEST(Trace, SummaryBreaksDownPerDevice) {
  sim::Trace tr;
  tr.record(sim::Cat::kCompute, 0, 0, 0, 600);
  tr.record(sim::Cat::kComm, 0, 0, 600, 800);
  tr.record(sim::Cat::kHostApi, -1, 0, 0, 100);
  const std::string text = tr.summary(1000);
  EXPECT_NE(text.find("gpu  0"), std::string::npos);
  EXPECT_NE(text.find("host"), std::string::npos);
  EXPECT_NE(text.find("60.0%"), std::string::npos);  // compute share
  EXPECT_NE(text.find("20.0%"), std::string::npos);  // comm share
}

TEST(Kernel, LaunchChargesHostAndStartLatency) {
  MachineSpec spec = simple_spec(1);
  spec.host.kernel_launch = 20;
  spec.host.launch_to_start = 30;
  Machine m(spec);
  Stream& s = m.device(0).create_stream();
  Nanos kernel_started = -1;
  Nanos host_after_launch = -1;
  m.run_host_threads([&](int) -> Task {
    HostCtx h(m, 0);
    CO_AWAIT(h.launch_single(s, LaunchConfig{.name = "k"}, 4,
                             [&](KernelCtx& k) -> Task {
                               kernel_started = k.now();
                               co_await k.busy(10, sim::Cat::kCompute, "c");
                             }));
    host_after_launch = m.engine().now();
    co_await h.sync_stream(s);
  });
  EXPECT_EQ(host_after_launch, 20);   // host returns after issue cost
  EXPECT_EQ(kernel_started, 50);      // issue 20 + start latency 30
}

TEST(Kernel, CooperativeOverSubscriptionThrows) {
  Machine m(simple_spec(1));
  Stream& s = m.device(0).create_stream();
  const int limit = m.device(0).spec().max_cooperative_blocks(1024);
  EXPECT_THROW(
      m.run_host_threads([&](int) -> Task {
        HostCtx h(m, 0);
        CO_AWAIT(h.launch_single(
            s, LaunchConfig{.threads_per_block = 1024, .cooperative = true},
            limit + 1, [](KernelCtx&) -> Task { co_return; }));
        co_await h.sync_stream(s);
      }),
      vgpu::CooperativeLaunchError);
}

TEST(Kernel, NonCooperativeAllowsOversubscription) {
  Machine m(simple_spec(1));
  Stream& s = m.device(0).create_stream();
  const int limit = m.device(0).spec().max_cooperative_blocks(1024);
  bool ran = false;
  m.run_host_threads([&](int) -> Task {
    HostCtx h(m, 0);
    CO_AWAIT(h.launch_single(s, LaunchConfig{.threads_per_block = 1024}, limit * 4,
                             [&](KernelCtx& k) -> Task {
                               ran = true;
                               EXPECT_EQ(k.blocks(), limit * 4);
                               co_return;
                             }));
    co_await h.sync_stream(s);
  });
  EXPECT_TRUE(ran);
}

TEST(Kernel, GridSyncJoinsBlockGroups) {
  Machine m(simple_spec(1));
  Stream& s = m.device(0).create_stream();
  std::vector<Nanos> after_sync;
  auto group = [&](Nanos work) {
    return [&, work](KernelCtx& k) -> Task {
      co_await k.busy(work, sim::Cat::kCompute, "w");
      co_await k.grid_sync();
      after_sync.push_back(k.now());
    };
  };
  m.run_host_threads([&](int) -> Task {
    HostCtx h(m, 0);
    std::vector<BlockGroup> groups;
    groups.push_back(BlockGroup{"fast", 1, group(10)});
    groups.push_back(BlockGroup{"slow", 1, group(90)});
    CO_AWAIT(h.launch(s, LaunchConfig{.cooperative = true, .name = "coop"},
                      std::move(groups)));
    co_await h.sync_stream(s);
  });
  ASSERT_EQ(after_sync.size(), 2u);
  // Join at 90, plus grid_sync cost 5.
  EXPECT_EQ(after_sync[0], 95);
  EXPECT_EQ(after_sync[1], 95);
}

TEST(Kernel, GridSyncOutsideCooperativeLaunchThrows) {
  Machine m(simple_spec(1));
  Stream& s = m.device(0).create_stream();
  EXPECT_THROW(m.run_host_threads([&](int) -> Task {
                 HostCtx h(m, 0);
                 CO_AWAIT(h.launch_single(s, LaunchConfig{}, 1,
                                          [](KernelCtx& k) -> Task {
                                            co_await k.grid_sync();
                                          }));
                 co_await h.sync_stream(s);
               }),
               std::logic_error);
}

TEST(Kernel, SpinWaitObservesFlagAfterPoll) {
  Machine m(simple_spec(1));
  Stream& s = m.device(0).create_stream();
  sim::Flag flag(m.engine(), 0);
  Nanos resumed = -1;
  m.run_host_threads([&](int) -> Task {
    HostCtx h(m, 0);
    m.engine().spawn([](Machine& mm, sim::Flag& f) -> Task {
      co_await mm.engine().delay(40);
      f.set(1);
    }(m, flag));
    CO_AWAIT(h.launch_single(s, LaunchConfig{}, 1, [&](KernelCtx& k) -> Task {
      co_await k.spin_wait(flag, sim::Cmp::kGe, 1, "wait");
      resumed = k.now();
    }));
    co_await h.sync_stream(s);
  });
  EXPECT_EQ(resumed, 41);  // signal at 40 + poll granularity 1
}

TEST(Kernel, ComputeRunsFunctionalBodyAndChargesDram) {
  Machine m(simple_spec(1));
  Stream& s = m.device(0).create_stream();
  auto data = m.alloc_array<double>(0, 8, "d");
  Nanos end = -1;
  m.run_host_threads([&](int) -> Task {
    HostCtx h(m, 0);
    CO_AWAIT(h.launch_single(s, LaunchConfig{}, 1, [&](KernelCtx& k) -> Task {
      // 200 bytes at 2 GB/s -> 100 ns.
      co_await k.compute(200.0, 1.0, "c", [&] { data[0] = 3.0; });
      end = k.now();
    }));
    co_await h.sync_stream(s);
  });
  EXPECT_EQ(data[0], 3.0);
  EXPECT_EQ(end, 100);
}

TEST(Kernel, EnvelopeRecordedInTrace) {
  Machine m(simple_spec(1));
  Stream& s = m.device(0).create_stream();
  m.run_host_threads([&](int) -> Task {
    HostCtx h(m, 0);
    CO_AWAIT(h.launch_single(s, LaunchConfig{.name = "env"}, 1,
                             [](KernelCtx& k) -> Task {
                               co_await k.busy(10, sim::Cat::kCompute, "c");
                             }));
    co_await h.sync_stream(s);
  });
  bool found = false;
  for (const auto& iv : m.trace().intervals()) {
    if (iv.cat == sim::Cat::kKernel && iv.name == "env") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Kernel, HostApiIntervalsAttributedToHostTimeline) {
  MachineSpec spec = simple_spec(1);
  spec.host.kernel_launch = 20;
  Machine m(spec);
  Stream& s = m.device(0).create_stream();
  m.run_host_threads([&](int) -> Task {
    HostCtx h(m, 0);
    CO_AWAIT(h.launch_single(s, LaunchConfig{}, 1,
                             [](KernelCtx&) -> Task { co_return; }));
    co_await h.sync_stream(s);
  });
  EXPECT_GE(m.trace().union_length(sim::Cat::kHostApi, -1), 20);
}

}  // namespace
