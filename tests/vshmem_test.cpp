// Unit tests for the GPU-initiated PGAS library: symmetric allocation,
// put/signal semantics and ordering, nbi + quiet, strided and single-element
// ops, fences and device-side collectives.
#include <gtest/gtest.h>

#include <functional>
#include <utility>
#include <vector>

#include "sim/combinators.hpp"
#include "test_machines.hpp"
#include "vgpu/kernel.hpp"
#include "vgpu/machine.hpp"
#include "vshmem/world.hpp"

namespace {

using sim::Cmp;
using sim::Nanos;
using sim::Task;
using vgpu::KernelCtx;
using vgpu::LaunchConfig;
using vgpu::Machine;
using vgpu::MachineSpec;
using vshmem::Scope;
using vshmem::SignalOp;
using vshmem::SignalSet;
using vshmem::Sym;
using vshmem::World;

/// Round-number spec: link 1 GB/s (1 byte/ns), device latency 50 ns, issue
/// 10 ns, thread-scope efficiency 1/2, strided 1/4, small-op overhead 5 ns.
MachineSpec spec(int devices) { return test_machines::scoped_links(devices); }

/// Runs one single-block kernel body per (device, fn) pair concurrently.
void run_on_devices(
    Machine& m,
    std::vector<std::pair<int, std::function<Task(KernelCtx&)>>> bodies) {
  for (auto& [dev, fn] : bodies) {
    std::vector<vgpu::BlockGroup> groups;
    groups.push_back(vgpu::BlockGroup{"test", 1, std::move(fn)});
    m.engine().spawn(vgpu::run_kernel(m, m.device(dev), 0, LaunchConfig{},
                                      std::move(groups)));
  }
  m.engine().run();
}

TEST(World, InitEnablesAllPeerAccess) {
  Machine m(spec(4));
  World w(m);
  EXPECT_EQ(w.n_pes(), 4);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      if (i != j) {
        EXPECT_TRUE(m.peer_enabled(i, j));
      }
    }
  }
}

TEST(World, SymmetricAllocationPerPe) {
  Machine m(spec(3));
  World w(m);
  Sym<double> a = w.alloc<double>(32, "halo");
  EXPECT_EQ(a.n_pes(), 3);
  EXPECT_EQ(a.size(), 32u);
  a.on(0)[0] = 1.0;
  a.on(1)[0] = 2.0;
  EXPECT_EQ(a.on(0)[0], 1.0);  // instances are distinct storage
  EXPECT_EQ(a.on(1)[0], 2.0);
  EXPECT_EQ(a.on(2)[0], 0.0);
}

TEST(Putmem, BlockingCopiesDataWithBlockScopeTiming) {
  Machine m(spec(2));
  World w(m);
  Sym<double> a = w.alloc<double>(16, "a");
  for (std::size_t i = 0; i < 16; ++i) a.on(0)[i] = static_cast<double>(i);
  Nanos done = -1;
  auto body = [&](KernelCtx& k) -> Task {
    co_await w.putmem(k, a, /*src_off=*/4, /*dst_off=*/8, /*count=*/4, 1);
    done = k.now();
  };
  run_on_devices(m, {{0, body}});
  // issue 10 + wire 32 bytes + latency 50 = 92.
  EXPECT_EQ(done, 92);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(a.on(1)[8 + i], static_cast<double>(4 + i));
  }
}

TEST(Putmem, ThreadScopeIsSlowerThanBlockScope) {
  Machine m(spec(2));
  World w(m);
  Sym<double> a = w.alloc<double>(64, "a");
  Nanos t_thread = -1;
  auto body = [&](KernelCtx& k) -> Task {
    co_await w.putmem(k, a, 0, 0, 32, 1, Scope::kThread);
    t_thread = k.now();
  };
  run_on_devices(m, {{0, body}});
  // 256 bytes at half efficiency -> 512 ns wire; 10 + 512 + 50 = 572.
  EXPECT_EQ(t_thread, 572);
}

TEST(PutmemNbi, ReturnsAfterIssueAndQuietCompletes) {
  Machine m(spec(2));
  World w(m);
  Sym<double> a = w.alloc<double>(128, "a");
  a.on(0)[0] = 7.0;
  Nanos after_issue = -1;
  Nanos after_quiet = -1;
  bool data_there_at_issue = true;
  auto body = [&](KernelCtx& k) -> Task {
    co_await w.putmem_nbi(k, a, 0, 0, 128, 1);
    after_issue = k.now();
    data_there_at_issue = (a.on(1)[0] == 7.0);
    co_await w.quiet(k);
    after_quiet = k.now();
  };
  run_on_devices(m, {{0, body}});
  EXPECT_EQ(after_issue, 10);              // only the descriptor cost
  EXPECT_FALSE(data_there_at_issue);       // payload still in flight
  // Transfer: issue 10 + 1024 bytes + 50 = 1084 ns end-to-end.
  EXPECT_EQ(after_quiet, 1084);
  EXPECT_EQ(a.on(1)[0], 7.0);
  EXPECT_EQ(w.outstanding_nbi(0), 0);
}

TEST(PutmemNbi, OutstandingCountTracksInFlightOps) {
  Machine m(spec(2));
  World w(m);
  Sym<double> a = w.alloc<double>(64, "a");
  std::int64_t outstanding_mid = -1;
  auto body = [&](KernelCtx& k) -> Task {
    co_await w.putmem_nbi(k, a, 0, 0, 64, 1);
    co_await w.putmem_nbi(k, a, 0, 0, 64, 1);
    outstanding_mid = w.outstanding_nbi(0);
    co_await w.quiet(k);
  };
  run_on_devices(m, {{0, body}});
  EXPECT_EQ(outstanding_mid, 2);
  EXPECT_EQ(w.outstanding_nbi(0), 0);
}

TEST(PutmemSignal, SignalVisibleOnlyAfterPayload) {
  Machine m(spec(2));
  World w(m);
  Sym<double> a = w.alloc<double>(8, "a");
  auto sig = w.alloc_signals(2);
  a.on(0)[0] = 3.25;
  double seen = -1.0;
  Nanos recv_time = -1;
  auto sender = [&](KernelCtx& k) -> Task {
    co_await w.putmem_signal_nbi(k, a, 0, 0, 8, *sig, 0, 1, SignalOp::kSet, 1);
    // sender continues immediately; no quiet needed for correctness at the
    // receiver because the signal is ordered after the payload.
  };
  auto receiver = [&](KernelCtx& k) -> Task {
    co_await w.signal_wait_until(k, *sig, 0, Cmp::kGe, 1);
    seen = a.on(1)[0];
    recv_time = k.now();
  };
  run_on_devices(m, {{0, sender}, {1, receiver}});
  EXPECT_EQ(seen, 3.25);
  // payload lands at issue 10 + 64 B + 50 = 124; + poll 1 = 125.
  EXPECT_EQ(recv_time, 125);
}

TEST(PutmemSignal, AddAccumulatesAcrossSenders) {
  Machine m(spec(3));
  World w(m);
  Sym<double> a = w.alloc<double>(4, "a");
  auto sig = w.alloc_signals(1);
  auto sender = [&](KernelCtx& k) -> Task {
    co_await w.putmem_signal_nbi(k, a, 0, 0, 1, *sig, 0, 1, SignalOp::kAdd, 2);
    co_await w.quiet(k);
  };
  int seen_value = -1;
  auto receiver = [&](KernelCtx& k) -> Task {
    co_await w.signal_wait_until(k, *sig, 0, Cmp::kGe, 2);
    seen_value = static_cast<int>(sig->at(2, 0).value());
  };
  run_on_devices(m, {{0, sender}, {1, sender}, {2, receiver}});
  EXPECT_EQ(seen_value, 2);
}

TEST(SignalOp, RemoteSetWithoutPayload) {
  Machine m(spec(2));
  World w(m);
  auto sig = w.alloc_signals(1);
  Nanos done = -1;
  auto body = [&](KernelCtx& k) -> Task {
    co_await w.signal_op(k, *sig, 0, 42, SignalOp::kSet, 1);
    done = k.now();
  };
  run_on_devices(m, {{0, body}});
  EXPECT_EQ(sig->at(1, 0).value(), 42);
  // small-op overhead 5 + issue 10 + 8 bytes + latency 50 = 73.
  EXPECT_EQ(done, 73);
}

TEST(Iput, StridedCopyIsCorrectAndSlowerThanContiguous) {
  Machine m(spec(2));
  World w(m);
  // 4x4 row-major grid; send column 1 of PE0 into column 2 of PE1.
  Sym<double> grid = w.alloc<double>(16, "grid");
  for (std::size_t i = 0; i < 16; ++i) grid.on(0)[i] = static_cast<double>(i);
  Nanos t_iput = -1;
  auto body = [&](KernelCtx& k) -> Task {
    co_await w.iput(k, grid, /*src_off=*/1, /*src_stride=*/4, /*dst_off=*/2,
                    /*dst_stride=*/4, /*count=*/4, 1);
    t_iput = k.now();
  };
  run_on_devices(m, {{0, body}});
  for (std::size_t r = 0; r < 4; ++r) {
    EXPECT_EQ(grid.on(1)[r * 4 + 2], static_cast<double>(r * 4 + 1));
  }
  // 32 bytes at quarter efficiency -> 128 ns wire; 10 + 128 + 50 = 188,
  // versus contiguous 10 + 32 + 50 = 92.
  EXPECT_EQ(t_iput, 188);
}

TEST(P, SingleElementPut) {
  Machine m(spec(2));
  World w(m);
  Sym<double> a = w.alloc<double>(4, "a");
  Nanos done = -1;
  auto body = [&](KernelCtx& k) -> Task {
    co_await w.p(k, a, 3, 9.5, 1);
    done = k.now();
  };
  run_on_devices(m, {{0, body}});
  EXPECT_EQ(a.on(1)[3], 9.5);
  // overhead 5 + issue 10 + 8 bytes + 50 = 73.
  EXPECT_EQ(done, 73);
}

TEST(Get, BlockingGetmemFetchesAndChargesRoundTrip) {
  Machine m(spec(2));
  World w(m);
  Sym<double> a = w.alloc<double>(16, "a");
  for (std::size_t i = 0; i < 16; ++i) a.on(1)[i] = 100.0 + static_cast<double>(i);
  Nanos done = -1;
  auto body = [&](KernelCtx& k) -> Task {
    // Fetch 4 elements from PE1 offset 8 into my offset 0.
    co_await w.getmem(k, a, /*src_off=*/8, /*dst_off=*/0, 4, 1);
    done = k.now();
  };
  run_on_devices(m, {{0, body}});
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(a.on(0)[i], 108.0 + static_cast<double>(i));
  }
  // Request leg (issue 10 + 8 B + lat 50 = 68) + payload leg (issue 10 +
  // 32 B + lat 50 = 92) = 160.
  EXPECT_EQ(done, 160);
}

TEST(Get, StridedIgetFetchesColumn) {
  Machine m(spec(2));
  World w(m);
  Sym<double> grid = w.alloc<double>(16, "grid");  // 4x4 on PE1
  for (std::size_t i = 0; i < 16; ++i) grid.on(1)[i] = static_cast<double>(i);
  auto body = [&](KernelCtx& k) -> Task {
    co_await w.iget(k, grid, /*src_off=*/2, /*src_stride=*/4, /*dst_off=*/0,
                    /*dst_stride=*/1, 4, 1);
  };
  run_on_devices(m, {{0, body}});
  for (std::size_t r = 0; r < 4; ++r) {
    EXPECT_EQ(grid.on(0)[r], static_cast<double>(r * 4 + 2));
  }
}

TEST(Get, SingleElementG) {
  Machine m(spec(2));
  World w(m);
  Sym<double> a = w.alloc<double>(4, "a");
  a.on(1)[3] = 6.25;
  double got = 0.0;
  auto body = [&](KernelCtx& k) -> Task {
    co_await w.g(k, a, 3, 1, got);
  };
  run_on_devices(m, {{0, body}});
  EXPECT_EQ(got, 6.25);
}

TEST(Get, TimingOnlyModeSkipsPayload) {
  Machine m(spec(2));
  World w(m);
  w.set_functional(false);
  Sym<double> a = w.alloc<double>(4, "a");
  a.on(1)[0] = 9.0;
  double got = -1.0;
  auto body = [&](KernelCtx& k) -> Task {
    co_await w.g(k, a, 0, 1, got);
  };
  run_on_devices(m, {{0, body}});
  EXPECT_EQ(got, 0.0);  // value zeroed, not fetched
}

TEST(Ordering, FenceChargesIssueCost) {
  Machine m(spec(2));
  World w(m);
  Nanos done = -1;
  auto body = [&](KernelCtx& k) -> Task {
    co_await w.fence(k);
    done = k.now();
  };
  run_on_devices(m, {{0, body}});
  EXPECT_EQ(done, 10);
}

TEST(Collectives, SyncAllJoinsAllPes) {
  Machine m(spec(4));
  World w(m);
  std::vector<Nanos> after(4, -1);
  std::vector<std::pair<int, std::function<Task(KernelCtx&)>>> bodies;
  for (int d = 0; d < 4; ++d) {
    bodies.emplace_back(d, [&, d](KernelCtx& k) -> Task {
      co_await k.engine().delay(d * 100);
      co_await w.sync_all(k);
      after[static_cast<std::size_t>(d)] = k.now();
    });
  }
  run_on_devices(m, std::move(bodies));
  // Last arrival at 300, + 2 dissemination rounds * (50 + 5) = 410.
  for (Nanos t : after) EXPECT_EQ(t, 410);
}

TEST(Collectives, BarrierAllImpliesQuiet) {
  Machine m(spec(2));
  World w(m);
  Sym<double> a = w.alloc<double>(256, "a");
  a.on(0)[0] = 5.0;
  double seen = -1.0;
  auto sender = [&](KernelCtx& k) -> Task {
    co_await w.putmem_nbi(k, a, 0, 0, 256, 1);
    co_await w.barrier_all(k);
  };
  auto receiver = [&](KernelCtx& k) -> Task {
    co_await w.barrier_all(k);
    seen = a.on(1)[0];  // must observe the nbi payload after the barrier
  };
  run_on_devices(m, {{0, sender}, {1, receiver}});
  EXPECT_EQ(seen, 5.0);
}

TEST(SignalWait, ComparisonVariants) {
  Machine m(spec(2));
  World w(m);
  auto sig = w.alloc_signals(1);
  std::vector<int> woke;
  auto waiter = [&](KernelCtx& k) -> Task {
    co_await w.signal_wait_until(k, *sig, 0, Cmp::kEq, 3);
    woke.push_back(1);
  };
  auto signaler = [&](KernelCtx& k) -> Task {
    co_await w.signal_op(k, *sig, 0, 1, SignalOp::kSet, 1);
    co_await w.signal_op(k, *sig, 0, 3, SignalOp::kSet, 1);
  };
  run_on_devices(m, {{1, waiter}, {0, signaler}});
  EXPECT_EQ(woke.size(), 1u);
}

// Property sweep: an iterative ring exchange with the paper's flag protocol
// (flag value == iteration, §4.1.1) never reads a stale halo, for any PE
// count and iteration count. Each PE publishes its value into the right
// neighbour's inbox with a signaled put, waits for its own inbox signal, and
// accumulates: v_d(t) = v_d(t-1) + v_{d-1}(t-1). The result is compared
// against a serial reference.
class RingSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RingSweep, FlagIterationProtocolNeverReadsStale) {
  const int n = std::get<0>(GetParam());
  const int iters = std::get<1>(GetParam());
  Machine m(spec(n));
  World w(m);
  // One symmetric array holds both mailboxes: [0] = inbox, [1] = outbox
  // (puts copy within one symmetric allocation, as in NVSHMEM where both
  // ends must be symmetric addresses).
  auto sig = w.alloc_signals(1);
  std::vector<double> value(static_cast<std::size_t>(n));
  for (int d = 0; d < n; ++d) value[static_cast<std::size_t>(d)] = d + 1.0;

  Sym<double> box = w.alloc<double>(2, "box");
  std::vector<std::pair<int, std::function<Task(KernelCtx&)>>> bodies;
  for (int d = 0; d < n; ++d) {
    bodies.emplace_back(d, [&, d](KernelCtx& k) -> Task {
      const int right = (d + 1) % n;
      for (int t = 1; t <= iters; ++t) {
        box.on(d)[1] = value[static_cast<std::size_t>(d)];  // outbox slot
        co_await w.putmem_signal_nbi(k, box, /*src_off=*/1, /*dst_off=*/0,
                                     /*count=*/1, *sig, 0, t, SignalOp::kSet,
                                     right);
        co_await w.signal_wait_until(k, *sig, 0, Cmp::kGe, t);
        value[static_cast<std::size_t>(d)] += box.on(d)[0];  // inbox slot
        co_await w.sync_all(k);
      }
    });
  }
  run_on_devices(m, std::move(bodies));

  // Serial reference of the same recurrence.
  std::vector<double> ref(static_cast<std::size_t>(n));
  for (int d = 0; d < n; ++d) ref[static_cast<std::size_t>(d)] = d + 1.0;
  for (int t = 0; t < iters; ++t) {
    std::vector<double> prev = ref;
    for (int d = 0; d < n; ++d) {
      const int left = (d - 1 + n) % n;
      ref[static_cast<std::size_t>(d)] =
          prev[static_cast<std::size_t>(d)] + prev[static_cast<std::size_t>(left)];
    }
  }
  for (int d = 0; d < n; ++d) {
    EXPECT_EQ(value[static_cast<std::size_t>(d)], ref[static_cast<std::size_t>(d)])
        << "PE " << d;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, RingSweep,
    ::testing::Combine(::testing::Values(2, 3, 4, 8), ::testing::Values(1, 3, 10)));

}  // namespace
