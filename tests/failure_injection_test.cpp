// Failure-injection tests: demonstrate that each synchronization mechanism
// in the CPU-Free protocol is load-bearing by removing it and observing the
// failure the simulator surfaces (wrong numerics, deadlock, or a thrown
// protocol error). These are the "what breaks without X" counterparts to the
// happy-path correctness tests.
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "cpufree/halo.hpp"
#include "cpufree/launch.hpp"
#include "sim/combinators.hpp"
#include "vgpu/kernel.hpp"
#include "vgpu/machine.hpp"
#include "vshmem/world.hpp"

namespace {

using sim::Task;
using vgpu::BlockGroup;
using vgpu::KernelCtx;
using vgpu::Machine;
using vgpu::MachineSpec;

MachineSpec spec(int n) {
  MachineSpec s = MachineSpec::hgx_a100(n);
  return s;
}

/// Two PEs run a 2-iteration producer/consumer exchange. With the iteration
/// flag protocol the consumer always reads the value of the right iteration;
/// without the wait (injected fault) it reads a stale value.
TEST(Inject, MissingSignalWaitReadsStaleHalo) {
  for (bool wait_enabled : {true, false}) {
    Machine m(spec(2));
    vshmem::World w(m);
    vshmem::Sym<double> box = w.alloc<double>(1, "box");
    auto sig = w.alloc_signals(1);
    std::vector<double> seen;

    auto producer = [&](KernelCtx& k) -> Task {
      for (int t = 1; t <= 2; ++t) {
        box.on(0)[0] = 10.0 * t;  // value of iteration t
        co_await w.putmem_signal_nbi(k, box, 0, 0, 1, *sig, 0, t,
                                     vshmem::SignalOp::kSet, 1);
        // Give iteration 2 extra simulated latency so an unsynchronized
        // consumer races ahead.
        co_await k.engine().delay(sim::usec(50));
      }
    };
    auto consumer = [&, wait_enabled](KernelCtx& k) -> Task {
      for (int t = 1; t <= 2; ++t) {
        if (wait_enabled) {
          co_await w.signal_wait_until(k, *sig, 0, sim::Cmp::kGe, t);
        } else {
          co_await k.engine().delay(sim::usec(2));  // "hope it arrived"
        }
        seen.push_back(box.on(1)[0]);
      }
    };
    std::vector<BlockGroup> g0, g1;
    g0.push_back(BlockGroup{"prod", 1, producer});
    g1.push_back(BlockGroup{"cons", 1, consumer});
    m.engine().spawn(vgpu::run_kernel(m, m.device(0), 0, vgpu::LaunchConfig{},
                                      std::move(g0)));
    m.engine().spawn(vgpu::run_kernel(m, m.device(1), 0, vgpu::LaunchConfig{},
                                      std::move(g1)));
    m.engine().run();
    ASSERT_EQ(seen.size(), 2u);
    if (wait_enabled) {
      EXPECT_EQ(seen[0], 10.0);
      EXPECT_EQ(seen[1], 20.0);
    } else {
      // The fault manifests: iteration 2 read the stale iteration-1 value.
      EXPECT_EQ(seen[1], 10.0);
    }
  }
}

/// A cooperative kernel whose groups disagree on the number of grid.sync()
/// calls deadlocks — and the engine DETECTS it instead of hanging.
TEST(Inject, MismatchedGridSyncCountsDeadlockDetected) {
  Machine m(spec(1));
  std::vector<BlockGroup> groups;
  groups.push_back(BlockGroup{"two_syncs", 1, [](KernelCtx& k) -> Task {
                                co_await k.grid_sync();
                                co_await k.grid_sync();
                              }});
  groups.push_back(BlockGroup{"one_sync", 1, [](KernelCtx& k) -> Task {
                                co_await k.grid_sync();
                              }});
  m.engine().spawn(vgpu::run_kernel(m, m.device(0), 0,
                                    vgpu::LaunchConfig{.cooperative = true},
                                    std::move(groups)));
  EXPECT_THROW(m.engine().run(), sim::DeadlockError);
}

/// A receiver waiting on a flag nobody ever signals deadlocks detectably.
TEST(Inject, MissingSignalDeadlockDetected) {
  Machine m(spec(2));
  vshmem::World w(m);
  auto sig = w.alloc_signals(1);
  std::vector<BlockGroup> g;
  g.push_back(BlockGroup{"waiter", 1, [&](KernelCtx& k) -> Task {
                           co_await w.signal_wait_until(k, *sig, 0,
                                                        sim::Cmp::kGe, 1);
                         }});
  m.engine().spawn(vgpu::run_kernel(m, m.device(1), 0, vgpu::LaunchConfig{},
                                    std::move(g)));
  EXPECT_THROW(m.engine().run(), sim::DeadlockError);
}

/// nbi puts without quiet are not guaranteed complete: a barrier-free reader
/// on the SAME PE may observe the payload missing; quiet() fixes it.
TEST(Inject, NbiWithoutQuietIsUnordered) {
  for (bool use_quiet : {true, false}) {
    Machine m(spec(2));
    vshmem::World w(m);
    vshmem::Sym<double> box = w.alloc<double>(64, "box");
    box.on(0)[0] = 7.0;
    double observed = -1.0;
    sim::Flag ready(m.engine(), 0);

    auto sender = [&, use_quiet](KernelCtx& k) -> Task {
      co_await w.putmem_nbi(k, box, 0, 0, 64, 1);
      if (use_quiet) co_await w.quiet(k);
      ready.set(1);  // tell the observer "I think it's done"
    };
    auto observer = [&](KernelCtx& k) -> Task {
      co_await k.spin_wait(ready, sim::Cmp::kGe, 1, "ready");
      observed = box.on(1)[0];
    };
    std::vector<BlockGroup> g0, g1;
    g0.push_back(BlockGroup{"send", 1, sender});
    g1.push_back(BlockGroup{"obs", 1, observer});
    m.engine().spawn(vgpu::run_kernel(m, m.device(0), 0, vgpu::LaunchConfig{},
                                      std::move(g0)));
    m.engine().spawn(vgpu::run_kernel(m, m.device(1), 0, vgpu::LaunchConfig{},
                                      std::move(g1)));
    m.engine().run();
    if (use_quiet) {
      EXPECT_EQ(observed, 7.0);  // quiet guarantees delivery
    } else {
      EXPECT_EQ(observed, 0.0);  // payload still in flight when flag was set
    }
  }
}

/// Transfers to a device without peer access are a programming error the
/// machine reports instead of silently mis-delivering.
TEST(Inject, MissingPeerAccessThrows) {
  Machine m(spec(2));  // no enable_peer_access / no vshmem::World init
  std::vector<BlockGroup> g;
  g.push_back(BlockGroup{"putter", 1, [&](KernelCtx& k) -> Task {
                           co_await k.peer_put(1, 64.0, "bad_put");
                         }});
  m.engine().spawn(vgpu::run_kernel(m, m.device(0), 0, vgpu::LaunchConfig{},
                                    std::move(g)));
  EXPECT_THROW(m.engine().run(), std::logic_error);
}

/// Oversubscribing a cooperative launch must throw BEFORE anything runs (the
/// Cooperative Groups restriction, §4.1.4), including through the CPU-Free
/// launcher.
TEST(Inject, PersistentOversubscriptionRejectedUpfront) {
  Machine m(spec(1));
  const int limit = m.device(0).spec().max_cooperative_blocks(1024);
  bool body_ran = false;
  std::vector<cpufree::DeviceGroups> groups(1);
  groups[0].push_back(BlockGroup{"huge", limit + 1, [&](KernelCtx&) -> Task {
                                   body_ran = true;
                                   co_return;
                                 }});
  EXPECT_THROW(cpufree::launch_persistent_all(m, std::move(groups)),
               vgpu::CooperativeLaunchError);
  EXPECT_FALSE(body_ran);
}

/// The engine's determinism also covers fault paths: two identical runs that
/// deadlock report the same number of stuck tasks.
TEST(Inject, DeterministicDeadlockDiagnostics) {
  auto stuck_count = [] {
    Machine m(spec(2));
    vshmem::World w(m);
    auto sig = w.alloc_signals(1);
    for (int d = 0; d < 2; ++d) {
      std::vector<BlockGroup> g;
      g.push_back(BlockGroup{"waiter", 1, [&w, &sig](KernelCtx& k) -> Task {
                               co_await w.signal_wait_until(
                                   k, *sig, 0, sim::Cmp::kGe, 1);
                             }});
      m.engine().spawn(vgpu::run_kernel(m, m.device(d), 0,
                                        vgpu::LaunchConfig{}, std::move(g)));
    }
    try {
      m.engine().run();
    } catch (const sim::DeadlockError& e) {
      return e.stuck_tasks;
    }
    return std::size_t{0};
  };
  const auto a = stuck_count();
  EXPECT_GT(a, 0u);
  EXPECT_EQ(a, stuck_count());
}

}  // namespace
