// Multi-tenant serving study — the admission-controlled job server
// (src/serve/) driven at fleet scale:
//
//   machine model x tenant count x workload mix
//
// Every cell multiplexes one deterministic fleet (tenants x jobs-per-tenant
// CPU-Free jobs, drawn from the counter-based RNG) onto ONE shared machine:
// arrivals are open-loop Poisson by default, admission is FIFO under the
// cooperative occupancy cap, and co-resident tenants contend on the shared
// link ledger. Every job is verified exactly against its serial reference,
// and compared against the identical job alone on an idle machine, so the
// per-cell slowdown/fairness/SLO columns measure *interference*, not noise.
//
// Expected shape: on the hgx crossbar (dedicated lanes per device pair)
// disjoint slices barely interfere (mean slowdown ~1x); on dgx_pcie and the
// two-node machine, slices that straddle a switch group or the NIC share a
// trunk and the wide halo-heavy jobs show measurably >1x.
//
// Extra flags (all strict, fail fast on malformed input):
//   --tenants N                                 pin the tenant-count axis
//   --serve jobs=N,policy=first_fit|best_fit    jobs/tenant + placement
//   --arrival mode=open|closed,mean=F,seed=S,concurrency=K
//
// --faults marks tenant t0's jobs faulty (injection stays gated to t0's
// worlds; use resilience=retry or retry+degrade so t0 recovers — the exit
// gate requires every admitted job to complete and verify). The final
// SERVED/BROKEN line gates CI: exit is nonzero iff any admitted job failed
// to complete with exact numerics.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "serve/server.hpp"
#include "sim/rng.hpp"
#include "solvers/sparse_cg.hpp"
#include "workloads/histogram/histogram.hpp"

namespace {

/// Salt for the job-shape stream: draws are f(seed, kShapeSalt + class,
/// tenant, job index) so fleets replay bit-identically per cell.
constexpr std::uint64_t kShapeSalt = 0x5e27e5a1febull;

struct MachineDef {
  const char* key;
  vgpu::MachineSpec (*make)();
};

const MachineDef kMachines[] = {
    {"hgx_a100", [] { return vgpu::MachineSpec::hgx_a100(8); }},
    {"dgx_pcie", [] { return vgpu::MachineSpec::dgx_pcie(8); }},
    {"multi_node", [] { return vgpu::MachineSpec::multi_node(2, 4); }},
};

struct MixDef {
  const char* key;
  std::vector<serve::JobKind> kinds;
};

const MixDef kMixes[] = {
    {"stencil", {serve::JobKind::kStencil}},
    {"stencil+cg", {serve::JobKind::kStencil, serve::JobKind::kCg}},
    {"all",
     {serve::JobKind::kStencil, serve::JobKind::kCg,
      serve::JobKind::kDacelite}},
    {"irregular",
     {serve::JobKind::kHistogram, serve::JobKind::kSparseCg}},
};

constexpr int kTenantAxis[] = {2, 8, 32};

/// Per-driver knobs parsed from --serve / --arrival / --tenants.
struct ServeArgs {
  int jobs_per_tenant = 4;
  serve::PlacePolicy policy = serve::PlacePolicy::kFirstFit;
  int tenants_pin = 0;  // 0 = sweep the full axis
  serve::ArrivalConfig arrival;

  static ServeArgs parse(int argc, char** argv) {
    ServeArgs a;
    a.arrival.mean_interarrival_us = 15.0;
    for (int i = 1; i < argc; ++i) {
      const std::string_view s = argv[i];
      if (s == "--tenants" && i + 1 < argc) {
        const std::string v = argv[++i];
        if (!bench::parse_int_strict(v, a.tenants_pin) || a.tenants_pin < 1) {
          bench::flag_usage_error("--tenants", "an integer >= 1", v);
        }
      } else if (s == "--serve" && i + 1 < argc) {
        bench::parse_kv_flag(
            "--serve", "jobs=N (>=1),policy=first_fit|best_fit", argv[++i],
            [&a](std::string_view key, const std::string& value) {
              if (key == "jobs") {
                return bench::parse_int_strict(value, a.jobs_per_tenant) &&
                       a.jobs_per_tenant >= 1;
              }
              if (key == "policy") {
                if (value == "first_fit") {
                  a.policy = serve::PlacePolicy::kFirstFit;
                } else if (value == "best_fit") {
                  a.policy = serve::PlacePolicy::kBestFit;
                } else {
                  return false;
                }
                return true;
              }
              return false;
            });
      } else if (s == "--arrival" && i + 1 < argc) {
        bench::parse_kv_flag(
            "--arrival",
            "mode=open|closed,mean=F (us, >0),seed=S,concurrency=K", argv[++i],
            [&a](std::string_view key, const std::string& value) {
              if (key == "mode") {
                if (value == "open") {
                  a.arrival.mode = serve::ArrivalConfig::Mode::kOpen;
                } else if (value == "closed") {
                  a.arrival.mode = serve::ArrivalConfig::Mode::kClosed;
                } else {
                  return false;
                }
                return true;
              }
              if (key == "mean") {
                return bench::parse_double_strict(
                           value, a.arrival.mean_interarrival_us) &&
                       a.arrival.mean_interarrival_us > 0.0;
              }
              if (key == "seed") {
                return bench::parse_u64_strict(value, a.arrival.seed);
              }
              if (key == "concurrency") {
                return bench::parse_int_strict(value, a.arrival.concurrency);
              }
              return false;
            });
      }
    }
    return a;
  }
};

/// The deterministic fleet one cell serves: jobs interleave tenants in
/// submission order (tenant-major round robin), shapes come from the
/// counter-based stream. Wide 4-device stencil jobs flip a coin between a
/// square compute-bound domain and a halo-heavy 2048x16 slab — the latter
/// is what exposes shared-trunk contention on the non-crossbar machines.
std::vector<serve::JobSpec> make_fleet(const MixDef& mix, int tenants,
                                       int jobs_per_tenant,
                                       std::uint64_t seed,
                                       bool tenant0_faulty) {
  static constexpr int kDevices[] = {1, 2, 4};
  static constexpr std::size_t kStencilN[] = {48, 64, 96};
  static constexpr std::size_t kCgN[] = {32, 48, 64};
  static constexpr std::size_t kHistBins[] = {61, 97, 193};
  static constexpr std::size_t kSparseN[] = {16, 24, 32};
  std::vector<serve::JobSpec> jobs;
  jobs.reserve(static_cast<std::size_t>(tenants) *
               static_cast<std::size_t>(jobs_per_tenant));
  int id = 0;
  for (int j = 0; j < jobs_per_tenant; ++j) {
    for (int t = 0; t < tenants; ++t) {
      const std::uint64_t tu = static_cast<std::uint64_t>(t);
      const std::uint64_t ju = static_cast<std::uint64_t>(j);
      serve::JobSpec s;
      s.id = id++;
      s.tenant = "t";
      s.tenant += std::to_string(t);
      s.kind = mix.kinds[sim::stream_mix(seed, kShapeSalt, tu, ju) %
                         mix.kinds.size()];
      s.devices =
          kDevices[sim::stream_mix(seed, kShapeSalt + 1, tu, ju) % 3];
      const std::uint64_t shape =
          sim::stream_mix(seed, kShapeSalt + 2, tu, ju);
      switch (s.kind) {
        case serve::JobKind::kStencil:
          if (s.devices == 4 && (shape & 1) != 0) {
            s.nx = 4096;  // halo-heavy wide slab: comm dominates per iter
            s.ny = 16;
            s.iterations = 12;
          } else {
            s.nx = s.ny = kStencilN[shape % 3];
            s.iterations = ((shape >> 8) & 1) != 0 ? 10 : 6;
          }
          break;
        case serve::JobKind::kCg:
          s.nx = s.ny = kCgN[shape % 3];
          s.iterations = ((shape >> 8) & 1) != 0 ? 12 : 8;
          break;
        case serve::JobKind::kDacelite:
          s.nx = s.ny = (shape & 1) != 0 ? 48 : 24;
          s.iterations = ((shape >> 8) & 1) != 0 ? 10 : 6;
          break;
        case serve::JobKind::kHistogram:
          s.nx = kHistBins[shape % 3];  // bins (owner-partitioned)
          s.ny = 192;                   // keys per PE per round
          s.skew = static_cast<int>((shape >> 4) & 3);
          s.iterations = ((shape >> 8) & 1) != 0 ? 6 : 4;
          s.threads_per_block = 128;
          break;
        case serve::JobKind::kSparseCg:
          s.nx = s.ny = kSparseN[shape % 3];
          s.imbalance = ((shape >> 4) & 1) != 0 ? 4.0 : 1.0;
          s.iterations = ((shape >> 8) & 1) != 0 ? 20 : 12;
          break;
      }
      s.faulty = tenant0_faulty && t == 0;
      jobs.push_back(std::move(s));
    }
  }
  return jobs;
}

int g_pdes_threads = 1;

/// One cell end to end: serve the fleet on a fresh shared machine and fold
/// the fleet metrics into the sweep record. The full per-job report is
/// written once into `report_out` (pre-sized slot, so concurrent cells
/// never touch the same element).
sweep::RunResult run_cell(const bench::Args& args, const ServeArgs& sargs,
                          const MachineDef& m, const MixDef& mix, int tenants,
                          std::uint64_t cell_seed,
                          serve::ServeReport* report_out,
                          sim::Observer* obs = nullptr) {
  serve::ServeConfig cfg;
  cfg.machine = args.with_faults(m.make());
  cfg.arrival = sargs.arrival;
  cfg.arrival.seed = cell_seed;
  cfg.policy = sargs.policy;
  cfg.observer = obs;
  cfg.compute_isolated = obs == nullptr;  // skip baselines under --check
  serve::ServeReport rep = serve::run_serve(
      cfg, make_fleet(mix, tenants, sargs.jobs_per_tenant, cell_seed,
                      args.faults.enabled()));

  sweep::RunResult res;
  res.spec = cfg.machine;
  const serve::FleetMetrics& f = rep.fleet;
  res.set("jobs", f.jobs);
  res.set("completed", f.completed);
  res.set("verified", f.verified);
  res.set("rejected", f.rejected);
  res.set("slo_met", f.slo_met);
  res.set("mean_queue_wait_us", f.mean_queue_wait_us);
  res.set("mean_slowdown", f.mean_slowdown);
  res.set("max_slowdown", f.max_slowdown);
  res.set("jain_fairness", f.jain_fairness);
  res.set("fleet_makespan_us", f.fleet_makespan_us);
  // A fleet cell mixes job kinds; per-job records below carry each job's
  // own workload tag and realized partition imbalance.
  bench::tag_workload(res, "serve_fleet", 1.0);
  if (report_out != nullptr) *report_out = std::move(rep);
  return res;
}

/// Realized partition-imbalance factor of one job's data split across its
/// device slice (what the per-job bench records are tagged with).
double job_imbalance(const serve::JobSpec& s) {
  switch (s.kind) {
    case serve::JobKind::kStencil:
    case serve::JobKind::kCg:
      return bench::slab_imbalance(s.ny, s.devices);
    case serve::JobKind::kDacelite:
      return 1.0;  // domain must divide by the process grid
    case serve::JobKind::kHistogram: {
      workloads::HistogramConfig cfg;
      cfg.bins = s.nx;
      cfg.keys_per_round = s.ny;
      cfg.rounds = s.iterations;
      cfg.skew = s.skew;
      return workloads::histogram_imbalance(cfg, s.devices);
    }
    case serve::JobKind::kSparseCg: {
      solvers::SparseCgConfig cfg;
      cfg.nx = s.nx;
      cfg.ny = s.ny;
      cfg.imbalance = s.imbalance;
      return solvers::sparse_partition_imbalance(cfg, s.devices);
    }
  }
  return 1.0;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::Args::parse(argc, argv);
  const ServeArgs sargs = ServeArgs::parse(argc, argv);
  g_pdes_threads = args.pdes_threads;
  if (args.topo) {
    for (const MachineDef& m : kMachines) {
      bench::print_topology(m.make(), m.key);
    }
    return 0;
  }

  std::vector<int> tenant_axis(std::begin(kTenantAxis),
                               std::end(kTenantAxis));
  if (sargs.tenants_pin > 0) tenant_axis = {sargs.tenants_pin};

  if (args.check) {
    // Small closed-loop fleets, one per machine model, with the
    // race/deadlock detector observing the SHARED machine (its findings
    // carry job labels via the server's job map). All three kinds
    // co-resident is the interesting case; --faults makes t0 faulty.
    std::vector<bench::CheckCase> cases;
    ServeArgs small = sargs;
    small.jobs_per_tenant = 3;
    small.arrival.mode = serve::ArrivalConfig::Mode::kClosed;
    small.arrival.concurrency = 3;
    for (const MachineDef& m : kMachines) {
      std::string label = m.key;
      label += "/all/t2";
      cases.push_back({std::move(label), [&args, small, &m](sim::Observer* o) {
                         (void)run_cell(args, small, m, kMixes[2], 2,
                                        /*cell_seed=*/7, nullptr, o);
                       }});
    }
    return bench::run_check(cases);
  }

  bench::print_header("Multi-tenant serving",
                      "machine model x tenant count x workload mix");
  bench::print_calibration(vgpu::MachineSpec::hgx_a100(8));
  std::printf(
      "arrival: %s, mean %.1f us, seed %llu, concurrency %d; policy %s; "
      "%d job(s)/tenant\n",
      serve::name(sargs.arrival.mode), sargs.arrival.mean_interarrival_us,
      static_cast<unsigned long long>(sargs.arrival.seed),
      sargs.arrival.concurrency, serve::name(sargs.policy),
      sargs.jobs_per_tenant);
  bench::print_faults(args.faults);
  if (args.faults.enabled()) {
    std::printf("faulty tenant: t0 (injection gated to t0's worlds)\n");
  }
  std::printf("\n");

  // Cell order (machine-major, then tenants, then mix) is shared by the
  // add loop, the report side-table and the printed tables below.
  const std::size_t n_cells =
      std::size(kMachines) * tenant_axis.size() * std::size(kMixes);
  std::vector<serve::ServeReport> reports(n_cells);

  sweep::Executor ex(args.sweep_options());
  std::size_t cell = 0;
  for (const MachineDef& m : kMachines) {
    for (int tenants : tenant_axis) {
      for (const MixDef& mix : kMixes) {
        std::string id = m.key;
        id += "/t";
        id += std::to_string(tenants);
        id += '/';
        id += mix.key;
        const std::uint64_t cell_seed = sim::stream_mix(
            sargs.arrival.seed, static_cast<std::uint64_t>(&m - kMachines),
            static_cast<std::uint64_t>(tenants),
            static_cast<std::uint64_t>(&mix - kMixes));
        serve::ServeReport* slot = &reports[cell++];
        ex.add(std::move(id),
               {{"machine", m.key},
                {"mix", mix.key},
                {"tenants", std::to_string(tenants)},
                {"jobs_per_tenant", std::to_string(sargs.jobs_per_tenant)},
                {"policy", serve::name(sargs.policy)}},
               [&args, &sargs, &m, &mix, tenants, cell_seed, slot] {
                 return run_cell(args, sargs, m, mix, tenants, cell_seed,
                                 slot);
               });
      }
    }
  }

  const int threads = ex.resolved_threads();
  std::vector<sweep::RunRecord> records = ex.run();
  bench::RecordCursor cur(records);

  int total_jobs = 0;
  int broken = 0;  // admitted jobs that failed to complete + verify
  for (const MachineDef& m : kMachines) {
    std::printf("%s\n", m.key);
    std::printf("  %-22s %5s %5s %5s %10s %8s %8s %6s %5s\n", "cell", "jobs",
                "ver", "rej", "wait us", "mean sd", "max sd", "jain", "slo%");
    double mach_sd_sum = 0.0, mach_sd_max = 0.0;
    int mach_cells = 0;
    for (int tenants : tenant_axis) {
      for (const MixDef& mix : kMixes) {
        const sweep::RunRecord& rec = cur.next();
        std::string cell_key = "t";
        cell_key += std::to_string(tenants);
        cell_key += '/';
        cell_key += mix.key;
        const int jobs = static_cast<int>(rec.value("jobs"));
        const int verified = static_cast<int>(rec.value("verified"));
        const int completed = static_cast<int>(rec.value("completed"));
        const int rejected = static_cast<int>(rec.value("rejected"));
        total_jobs += jobs;
        broken += (jobs - rejected) - completed;  // stuck or crashed
        broken += completed - verified;           // finished, wrong numerics
        std::printf("  %-22s %5d %5d %5d %10.1f %8.3f %8.3f %6.3f %5.1f\n",
                    cell_key.c_str(), jobs, verified, rejected,
                    rec.value("mean_queue_wait_us"),
                    rec.value("mean_slowdown"), rec.value("max_slowdown"),
                    rec.value("jain_fairness"),
                    jobs > rejected
                        ? 100.0 * rec.value("slo_met") / (jobs - rejected)
                        : 0.0);
        mach_sd_sum += rec.value("mean_slowdown");
        mach_sd_max = std::max(mach_sd_max, rec.value("max_slowdown"));
        ++mach_cells;
      }
    }
    std::printf("  contention: mean slowdown %.3fx, max %.3fx\n\n",
                mach_cells > 0 ? mach_sd_sum / mach_cells : 0.0, mach_sd_max);
  }

  // Append one record per job (id/tenant attribution included) after the
  // per-cell fleet records, same cell order, so the JSON carries the full
  // per-job story the fairness/SLO plots need.
  std::size_t next_index = records.size();
  cell = 0;
  for (const MachineDef& m : kMachines) {
    for (int tenants : tenant_axis) {
      for (const MixDef& mix : kMixes) {
        const serve::ServeReport& rep = reports[cell++];
        for (const serve::JobRecord& jr : rep.jobs) {
          sweep::RunRecord rec;
          rec.index = next_index++;
          rec.id = m.key;
          rec.id += "/t";
          rec.id += std::to_string(tenants);
          rec.id += '/';
          rec.id += mix.key;
          rec.id += "/job";
          rec.id += std::to_string(jr.spec.id);
          rec.params = {{"machine", m.key},
                        {"mix", mix.key},
                        {"tenants", std::to_string(tenants)},
                        {"job_id", std::to_string(jr.spec.id)},
                        {"tenant", jr.spec.tenant},
                        {"kind", serve::name(jr.spec.kind)},
                        {"devices", std::to_string(jr.spec.devices)}};
          rec.out.spec = args.with_faults(m.make());
          bench::tag_workload(rec.out, serve::name(jr.spec.kind),
                              job_imbalance(jr.spec));
          rec.out.set("arrival_us", sim::to_usec(jr.out.arrival));
          rec.out.set("admit_us", sim::to_usec(jr.out.admit));
          rec.out.set("end_us", sim::to_usec(jr.out.end));
          rec.out.set("queue_wait_us", sim::to_usec(jr.out.queue_wait()));
          rec.out.set("makespan_us", sim::to_usec(jr.out.makespan()));
          rec.out.set("isolated_us", jr.isolated_us);
          rec.out.set("slowdown", jr.slowdown);
          rec.out.set("admitted", jr.out.admitted ? 1.0 : 0.0);
          rec.out.set("verified", jr.out.verified ? 1.0 : 0.0);
          rec.out.set("slo_met", jr.slo_met ? 1.0 : 0.0);
          rec.out.set("blocks_per_device", jr.out.blocks_per_device);
          rec.out.set("first_device", jr.out.first_device);
          rec.out.note("detail", jr.out.detail);
          records.push_back(std::move(rec));
        }
      }
    }
  }

  std::printf("%s: %d job(s) across %zu cell(s), %d broken\n\n",
              broken == 0 ? "SERVED" : "BROKEN", total_jobs, n_cells, broken);

  bench::emit_records("fig_multitenant", args, threads, records);
  return broken == 0 ? 0 : 1;
}
