// Ablations of the design choices the paper calls out:
//   1. Thread-block specialization share (§4.1.2): the proportional formula
//      versus a fixed single boundary TB versus an equal three-way split, on
//      a small unbalanced 3D domain (where the paper says proportional
//      splitting matters).
//   2. Communication scope (§3.1.4): block-cooperative puts
//      (nvshmemx_*_block) versus thread-scoped puts.
//   3. Nonblocking (nbi) vs blocking puts in compiler-generated persistent
//      kernels (§5.3.2).
//   4. Relaxed vs conservative grid-barrier placement in the persistent
//      fusion (§5.1).
#include <cstdio>

#include "bench_common.hpp"
#include "dacelite/exec.hpp"
#include "dacelite/frontend.hpp"
#include "stencil/problems.hpp"
#include "stencil/runner.hpp"
#include "stencil/variants.hpp"
#include "vshmem/world.hpp"

namespace {

using stencil::StencilConfig;
using stencil::TbPolicy;
using stencil::Variant;

// The arm table below is captureless function pointers; the fault plane
// selected on the command line is routed through this file-scope config,
// set once in main() before any run.
fault::Config g_faults;
int g_pdes_threads = 1;

sweep::RunResult run3d(TbPolicy policy, vshmem::Scope scope, int gpus,
                       sim::Observer* obs = nullptr) {
  stencil::Jacobi3D p;
  p.nx = 512;
  p.ny = 256;
  p.nz = 16 * static_cast<std::size_t>(gpus);  // thin, unbalanced slabs
  StencilConfig cfg;
  cfg.iterations = obs != nullptr ? 6 : 50;
  cfg.functional = false;
  cfg.tb_policy = policy;
  cfg.comm_scope = scope;
  cfg.observer = obs;
  vgpu::MachineSpec spec = vgpu::MachineSpec::hgx_a100(gpus);
  spec.faults = g_faults;
  spec.pdes_threads = g_pdes_threads;
  const auto out = stencil::run_jacobi3d(Variant::kCpuFree, spec, p, cfg);
  sweep::RunResult res;
  res.spec = spec;
  res.metrics = out.result.metrics;
  res.set("per_iter_us", out.result.metrics.per_iteration_us());
  bench::tag_workload(res, "jacobi3d", bench::slab_imbalance(p.nz, gpus));
  return res;
}

sweep::RunResult run_stencil2d(Variant v, int gpus) {
  stencil::Jacobi2D p;
  p.nx = 2048;
  p.ny = 2048;
  StencilConfig cfg;
  cfg.iterations = 50;
  cfg.functional = false;
  vgpu::MachineSpec spec = vgpu::MachineSpec::hgx_a100(gpus);
  spec.faults = g_faults;
  spec.pdes_threads = g_pdes_threads;
  const auto out = stencil::run_jacobi2d(v, spec, p, cfg);
  sweep::RunResult res;
  res.spec = spec;
  res.metrics = out.result.metrics;
  res.set("per_iter_us", out.result.metrics.per_iteration_us());
  bench::tag_workload(res, "jacobi2d", bench::slab_imbalance(p.ny, gpus));
  return res;
}

sweep::RunResult run_dace2d(bool blocking, bool conservative, int gpus,
                            sim::Observer* obs = nullptr) {
  auto prog = dacelite::make_jacobi2d(obs != nullptr ? 128 : 2048, gpus,
                                      obs != nullptr ? 8 : 50);
  dacelite::to_cpu_free(prog.sdfg);
  vgpu::MachineSpec spec = vgpu::MachineSpec::hgx_a100(gpus);
  spec.faults = g_faults;
  spec.pdes_threads = g_pdes_threads;
  vgpu::Machine m(spec);
  m.engine().set_observer(obs);
  vshmem::World w(m);
  dacelite::ProgramData data(w, prog.sdfg, false);
  dacelite::ExecOptions opt;
  opt.functional = false;
  opt.blocking_puts = blocking;
  opt.conservative_barriers = conservative;
  const auto r = dacelite::execute_persistent(m, w, data, prog.sdfg, opt);
  sweep::RunResult res;
  res.spec = spec;
  res.metrics = r.metrics;
  res.set("per_iter_us", sim::to_usec(r.metrics.per_iteration));
  res.set("persistent_blocks", r.persistent_blocks);
  res.note("put_expansion", r.put_expansion);
  // The dacelite frontend requires the domain to divide by the process
  // grid, so its partition is exactly even.
  bench::tag_workload(res, "dacelite", 1.0);
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::Args::parse(argc, argv);
  g_faults = args.faults;
  g_pdes_threads = args.pdes_threads;
  if (args.topo) {
    bench::print_topology(vgpu::MachineSpec::hgx_a100(8), "hgx_a100(8)");
    return 0;
  }
  if (args.check) {
    // One case per ablation arm: every knob setting must stay race- and
    // deadlock-free, not just the paper's default composition.
    const std::vector<bench::CheckCase> cases = {
        {"tb_proportional", [](sim::Observer* o) {
           run3d(TbPolicy::kProportional, vshmem::Scope::kBlock, 2, o);
         }},
        {"tb_single_block", [](sim::Observer* o) {
           run3d(TbPolicy::kSingleBlock, vshmem::Scope::kBlock, 2, o);
         }},
        {"tb_equal_split", [](sim::Observer* o) {
           run3d(TbPolicy::kEqualSplit, vshmem::Scope::kBlock, 2, o);
         }},
        {"thread_scoped_puts", [](sim::Observer* o) {
           run3d(TbPolicy::kProportional, vshmem::Scope::kThread, 2, o);
         }},
        {"dace_nbi_puts",
         [](sim::Observer* o) { run_dace2d(false, false, 2, o); }},
        {"dace_blocking_puts",
         [](sim::Observer* o) { run_dace2d(true, false, 2, o); }},
        {"dace_conservative_barriers",
         [](sim::Observer* o) { run_dace2d(false, true, 2, o); }},
    };
    return bench::run_check(cases);
  }
  bench::print_header("Ablations", "design choices called out in the paper");
  bench::print_calibration(vgpu::MachineSpec::hgx_a100(8));
  bench::print_faults(args.faults);
  const std::vector<int> gpus = {2, 4, 8};

  // Every arm perturbs one knob of the same CPU-Free composition (the
  // dacelite persistent backend runs the identical triple).
  bench::print_policies(
      {{stencil::variant_name(Variant::kCpuFree),
        stencil::plan_for(Variant::kCpuFree)},
       {stencil::variant_name(Variant::kCpuFreeTwoKernels),
        stencil::plan_for(Variant::kCpuFreeTwoKernels)}});

  // Every ablation arm, in table order; each arm contributes one row whose
  // columns are the GPU counts.
  struct Arm {
    const char* study;
    const char* label;
    sweep::RunResult (*run)(int gpus);
  };
  const Arm arms[] = {
      {"tb_policy", "proportional (paper)",
       [](int g) { return run3d(TbPolicy::kProportional, vshmem::Scope::kBlock, g); }},
      {"tb_policy", "single boundary TB",
       [](int g) { return run3d(TbPolicy::kSingleBlock, vshmem::Scope::kBlock, g); }},
      {"tb_policy", "equal three-way split",
       [](int g) { return run3d(TbPolicy::kEqualSplit, vshmem::Scope::kBlock, g); }},
      {"put_scope", "block-scoped puts (paper)",
       [](int g) { return run3d(TbPolicy::kProportional, vshmem::Scope::kBlock, g); }},
      {"put_scope", "thread-scoped puts",
       [](int g) { return run3d(TbPolicy::kProportional, vshmem::Scope::kThread, g); }},
      {"put_blocking", "nbi puts (default)",
       [](int g) { return run_dace2d(false, false, g); }},
      {"put_blocking", "blocking puts",
       [](int g) { return run_dace2d(true, false, g); }},
      {"kernel_org", "single kernel + TB specialization",
       [](int g) { return run_stencil2d(Variant::kCpuFree, g); }},
      {"kernel_org", "two co-resident kernels",
       [](int g) { return run_stencil2d(Variant::kCpuFreeTwoKernels, g); }},
      {"barriers", "relaxed barriers (this work)",
       [](int g) { return run_dace2d(false, false, g); }},
      {"barriers", "barrier after every state",
       [](int g) { return run_dace2d(false, true, g); }},
  };

  sweep::Executor ex(args.sweep_options());
  for (const Arm& arm : arms) {
    for (int g : gpus) {
      ex.add(std::string(arm.study) + "/" + arm.label +
                 "/gpus=" + std::to_string(g),
             {{"study", arm.study},
              {"arm", arm.label},
              {"gpus", std::to_string(g)}},
             [&arm, g] { return arm.run(g); });
    }
  }

  const int threads = ex.resolved_threads();
  const std::vector<sweep::RunRecord> records = ex.run();
  bench::RecordCursor cur(records);

  auto take_row = [&](const char* label) {
    bench::Row r{label, {}};
    for (std::size_t i = 0; i < gpus.size(); ++i) {
      r.values.push_back(cur.next().value("per_iter_us"));
    }
    return r;
  };

  bench::print_table(
      "1. TB specialization policy, unbalanced 3D domain (CPU-Free)", gpus,
      {take_row("proportional (paper)"), take_row("single boundary TB"),
       take_row("equal three-way split")},
      "us/iter");
  bench::print_table(
      "2. halo put scope (CPU-Free 3D)", gpus,
      {take_row("block-scoped puts (paper)"), take_row("thread-scoped puts")},
      "us/iter");
  bench::print_table(
      "3. nonblocking vs blocking puts (dacelite jacobi2d)", gpus,
      {take_row("nbi puts (default)"), take_row("blocking puts")}, "us/iter");
  bench::print_table(
      "4. single persistent kernel vs two co-resident kernels (2D)", gpus,
      {take_row("single kernel + TB specialization"),
       take_row("two co-resident kernels")},
      "us/iter");
  bench::print_table(
      "5. persistent-fusion barrier placement (dacelite)", gpus,
      {take_row("relaxed barriers (this work)"),
       take_row("barrier after every state")},
      "us/iter");

  bench::emit_records("ablation_design", args, threads, records);
  return 0;
}
