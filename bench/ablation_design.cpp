// Ablations of the design choices the paper calls out:
//   1. Thread-block specialization share (§4.1.2): the proportional formula
//      versus a fixed single boundary TB versus an equal three-way split, on
//      a small unbalanced 3D domain (where the paper says proportional
//      splitting matters).
//   2. Communication scope (§3.1.4): block-cooperative puts
//      (nvshmemx_*_block) versus thread-scoped puts.
//   3. Nonblocking (nbi) vs blocking puts in compiler-generated persistent
//      kernels (§5.3.2).
//   4. Relaxed vs conservative grid-barrier placement in the persistent
//      fusion (§5.1).
#include <cstdio>

#include "bench_common.hpp"
#include "dacelite/exec.hpp"
#include "dacelite/frontend.hpp"
#include "stencil/problems.hpp"
#include "stencil/runner.hpp"
#include "vshmem/world.hpp"

namespace {

using stencil::StencilConfig;
using stencil::TbPolicy;
using stencil::Variant;

double run3d(TbPolicy policy, vshmem::Scope scope, int gpus) {
  stencil::Jacobi3D p;
  p.nx = 512;
  p.ny = 256;
  p.nz = 16 * static_cast<std::size_t>(gpus);  // thin, unbalanced slabs
  StencilConfig cfg;
  cfg.iterations = 50;
  cfg.functional = false;
  cfg.tb_policy = policy;
  cfg.comm_scope = scope;
  const auto out = stencil::run_jacobi3d(
      Variant::kCpuFree, vgpu::MachineSpec::hgx_a100(gpus), p, cfg);
  return out.result.metrics.per_iteration_us();
}

double run_dace2d(bool blocking, bool conservative, int gpus) {
  auto prog = dacelite::make_jacobi2d(2048, gpus, 50);
  dacelite::to_cpu_free(prog.sdfg);
  vgpu::Machine m(vgpu::MachineSpec::hgx_a100(gpus));
  vshmem::World w(m);
  dacelite::ProgramData data(w, prog.sdfg, false);
  dacelite::ExecOptions opt;
  opt.functional = false;
  opt.blocking_puts = blocking;
  opt.conservative_barriers = conservative;
  const auto r = dacelite::execute_persistent(m, w, data, prog.sdfg, opt);
  return sim::to_usec(r.metrics.per_iteration);
}

}  // namespace

int main() {
  bench::print_header("Ablations", "design choices called out in the paper");
  bench::print_calibration(vgpu::MachineSpec::hgx_a100(8));
  const std::vector<int> gpus = {2, 4, 8};

  {
    std::vector<bench::Row> rows;
    rows.push_back({"proportional (paper)", {}});
    rows.push_back({"single boundary TB", {}});
    rows.push_back({"equal three-way split", {}});
    for (int g : gpus) {
      rows[0].values.push_back(
          run3d(TbPolicy::kProportional, vshmem::Scope::kBlock, g));
      rows[1].values.push_back(
          run3d(TbPolicy::kSingleBlock, vshmem::Scope::kBlock, g));
      rows[2].values.push_back(
          run3d(TbPolicy::kEqualSplit, vshmem::Scope::kBlock, g));
    }
    bench::print_table(
        "1. TB specialization policy, unbalanced 3D domain (CPU-Free)", gpus,
        rows, "us/iter");
  }

  {
    std::vector<bench::Row> rows;
    rows.push_back({"block-scoped puts (paper)", {}});
    rows.push_back({"thread-scoped puts", {}});
    for (int g : gpus) {
      rows[0].values.push_back(
          run3d(TbPolicy::kProportional, vshmem::Scope::kBlock, g));
      rows[1].values.push_back(
          run3d(TbPolicy::kProportional, vshmem::Scope::kThread, g));
    }
    bench::print_table("2. halo put scope (CPU-Free 3D)", gpus, rows,
                       "us/iter");
  }

  {
    std::vector<bench::Row> rows;
    rows.push_back({"nbi puts (default)", {}});
    rows.push_back({"blocking puts", {}});
    for (int g : gpus) {
      rows[0].values.push_back(run_dace2d(false, false, g));
      rows[1].values.push_back(run_dace2d(true, false, g));
    }
    bench::print_table("3. nonblocking vs blocking puts (dacelite jacobi2d)",
                       gpus, rows, "us/iter");
  }

  {
    std::vector<bench::Row> rows;
    rows.push_back({"single kernel + TB specialization", {}});
    rows.push_back({"two co-resident kernels", {}});
    for (int g : gpus) {
      stencil::Jacobi2D p2;
      p2.nx = 2048;
      p2.ny = 2048;
      StencilConfig cfg;
      cfg.iterations = 50;
      cfg.functional = false;
      rows[0].values.push_back(
          stencil::run_jacobi2d(Variant::kCpuFree,
                                vgpu::MachineSpec::hgx_a100(g), p2, cfg)
              .result.metrics.per_iteration_us());
      rows[1].values.push_back(
          stencil::run_jacobi2d(Variant::kCpuFreeTwoKernels,
                                vgpu::MachineSpec::hgx_a100(g), p2, cfg)
              .result.metrics.per_iteration_us());
    }
    bench::print_table(
        "5. single persistent kernel vs two co-resident kernels (2D)", gpus,
        rows, "us/iter");
  }

  {
    std::vector<bench::Row> rows;
    rows.push_back({"relaxed barriers (this work)", {}});
    rows.push_back({"barrier after every state", {}});
    for (int g : gpus) {
      rows[0].values.push_back(run_dace2d(false, false, g));
      rows[1].values.push_back(run_dace2d(false, true, g));
    }
    bench::print_table("4. persistent-fusion barrier placement (dacelite)",
                       gpus, rows, "us/iter");
  }
  return 0;
}
