// Figure 6.3 — compiler-generated code: discrete distributed DaCe (MPI)
// versus CPU-Free (persistent + NVSHMEM) on Jacobi 1D and 2D, weak scaling
// on 1-8 A100s.
//
// Shape targets from the paper (at 8 GPUs):
//   * Jacobi 1D: ~45% total-time and ~27% communication-latency improvement
//     (two single-element transfers per step; gains are synchronization);
//   * Jacobi 2D: ~97% improvement; the baseline is >99% communication; the
//     baseline bumps at 2 and 8 GPUs (rectangular process grid); CPU-Free
//     weak-scaling efficiency ~80%.
#include <cstdio>

#include "bench_common.hpp"
#include "dacelite/exec.hpp"
#include "dacelite/frontend.hpp"
#include "dacelite/pass.hpp"
#include "hostmpi/comm.hpp"
#include "tune/tuner.hpp"
#include "tune_report.hpp"
#include "vshmem/world.hpp"

namespace {

/// Replays the canonical recipe for `cpufree` (the §6.2.1 CPU-Free porting
/// sequence vs the GPU-only baseline preparation) and runs the matching
/// backend. Both hand-rolled transform chains this driver used to carry are
/// now the same two named recipes the tuner enumerates around.
sweep::RunResult run_sdfg(dacelite::Sdfg& sdfg, bool cpufree, int ranks,
                          const bench::Args& args, sim::Observer* obs) {
  const dacelite::Recipe recipe = cpufree ? dacelite::Recipe::cpu_free_default()
                                          : dacelite::Recipe::gpu_baseline();
  dacelite::Pipeline().apply(sdfg, recipe);
  const vgpu::MachineSpec spec =
      args.with_faults(vgpu::MachineSpec::hgx_a100(ranks));
  vgpu::Machine m(spec);
  m.engine().set_observer(obs);
  vshmem::World w(m);
  dacelite::ExecOptions opt = dacelite::exec_options(recipe);
  opt.functional = false;
  dacelite::ProgramData data(w, sdfg, /*functional=*/false);
  dacelite::ExecResult r;
  if (cpufree) {
    r = dacelite::execute_persistent(m, w, data, sdfg, opt);
  } else {
    hostmpi::Comm comm(m);
    r = dacelite::execute_discrete(m, comm, data, sdfg, opt);
  }
  sweep::RunResult res;
  res.spec = spec;
  res.metrics = r.metrics;
  res.set("total_ms", r.metrics.total_ms());
  res.set("comm_us", sim::to_usec(r.metrics.comm));
  res.set("noncompute_pct", r.metrics.noncompute_fraction * 100.0);
  res.set("persistent_blocks", r.persistent_blocks);
  res.note("put_expansion", r.put_expansion);
  // The dacelite frontend requires the domain to divide by the process
  // grid, so its partition is exactly even.
  bench::tag_workload(res, "dacelite", 1.0);
  return res;
}

sweep::RunResult run_1d(bool cpufree, std::size_t n, int ranks, int iters,
                        const bench::Args& args,
                        sim::Observer* obs = nullptr) {
  auto prog = dacelite::make_jacobi1d(n, ranks, iters);
  return run_sdfg(prog.sdfg, cpufree, ranks, args, obs);
}

sweep::RunResult run_2d(bool cpufree, std::size_t gx, std::size_t gy,
                        int ranks, int iters, const bench::Args& args,
                        sim::Observer* obs = nullptr) {
  auto prog = dacelite::make_jacobi2d(gx, gy, ranks, iters);
  return run_sdfg(prog.sdfg, cpufree, ranks, args, obs);
}

/// --tune: the prototype-then-validate loop on Jacobi 2D (the workload with
/// the richest decision space: partition shape + strided west/east puts).
/// Exit status 0 only when a validated, verified, check-clean recipe
/// measured strictly faster than the default — the autotuning acceptance
/// gate CI runs with a small budget.
int run_tune(const bench::Args& args) {
  bench::print_header("Recipe autotuner",
                      "dacelite pass recipes, prototype -> validate");
  tune::Workload w;
  w.kind = tune::WorkloadKind::kJacobi2D;
  w.gx = 800;
  w.gy = 800;
  w.ranks = 4;
  w.iterations = 10;
  bench::print_calibration(vgpu::MachineSpec::hgx_a100(w.ranks));

  tune::TuneOptions topt;
  topt.top_k = 3;
  topt.max_candidates = args.tune_budget;
  topt.sweep_threads = args.threads;
  topt.pdes_threads = args.pdes_threads;
  topt.progress = args.progress;
  topt.id_prefix = "jacobi2d/";
  topt.base_params = {{"system", "jacobi2d"}};
  const tune::TuneReport rep =
      tune::tune(w, vgpu::MachineSpec::hgx_a100(w.ranks), topt);
  const bool improved = bench::print_tune_summary(rep);
  bench::emit_records("fig6_3_dace_tune", args, topt.sweep_threads,
                      rep.records);
  return improved ? 0 : 1;
}

/// Weak scaling: grow the domain with the rank count.
std::size_t weak_1d(std::size_t base, int ranks) {
  return base * static_cast<std::size_t>(ranks);
}
/// Weak 2D scaling: double alternating axes per device doubling so the
/// per-rank block stays constant.
std::pair<std::size_t, std::size_t> weak_2d(std::size_t base, int ranks) {
  std::size_t gx = base, gy = base;
  int r = ranks;
  bool axis = false;
  while (r > 1) {
    if (axis) {
      gx *= 2;
    } else {
      gy *= 2;
    }
    axis = !axis;
    r /= 2;
  }
  return {gx, gy};
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::Args::parse(argc, argv);
  if (args.topo) {
    bench::print_topology(vgpu::MachineSpec::hgx_a100(8), "hgx_a100(8)");
    return 0;
  }
  if (args.tune) return run_tune(args);
  if (args.check) {
    const std::vector<bench::CheckCase> cases = {
        {"jacobi1d/baseline_mpi",
         [&args](sim::Observer* o) { run_1d(false, 4096, 2, 8, args, o); }},
        {"jacobi1d/cpu_free_nvshmem",
         [&args](sim::Observer* o) { run_1d(true, 4096, 2, 8, args, o); }},
        {"jacobi2d/baseline_mpi",
         [&args](sim::Observer* o) { run_2d(false, 64, 128, 2, 8, args, o); }},
        {"jacobi2d/cpu_free_nvshmem",
         [&args](sim::Observer* o) { run_2d(true, 64, 128, 2, 8, args, o); }},
    };
    return bench::run_check(cases);
  }
  bench::print_header("Figure 6.3",
                      "DaCe-generated: discrete MPI vs CPU-Free (NVSHMEM)");
  bench::print_calibration(vgpu::MachineSpec::hgx_a100(8));
  bench::print_faults(args.faults);

  const std::vector<int> gpus = {1, 2, 4, 8};
  constexpr int kIters = 100;
  const char* impl_name[] = {"baseline_mpi", "cpu_free_nvshmem"};

  // The two generated workflows as exec-layer compositions: the discrete
  // backend is a host-driven loop with staged (MPI) transfers fenced by the
  // host; the persistent backend is the CPU-Free triple.
  bench::print_policies(
      {{impl_name[0],
        {exec::LaunchPolicy::kHostLoop, exec::CommPolicy::kStagedCopy,
         exec::SyncPolicy::kHostBarrier}},
       {impl_name[1],
        {exec::LaunchPolicy::kPersistent, exec::CommPolicy::kSignaledPut,
         exec::SyncPolicy::kIterationFlags}}});

  sweep::Executor ex(args.sweep_options());
  for (const char* system : {"jacobi1d", "jacobi2d"}) {
    const bool is_1d = std::string_view(system) == "jacobi1d";
    for (int impl = 0; impl < 2; ++impl) {
      const bool cpufree = impl == 1;
      for (int g : gpus) {
        ex.add(std::string(system) + "/" + impl_name[impl] +
                   "/gpus=" + std::to_string(g),
               {{"system", system},
                {"impl", impl_name[impl]},
                {"gpus", std::to_string(g)}},
               [is_1d, cpufree, g, &args] {
                 if (is_1d) {
                   return run_1d(cpufree, weak_1d(1u << 20, g), g, kIters,
                                 args);
                 }
                 const auto [gx, gy] = weak_2d(2048, g);
                 return run_2d(cpufree, gx, gy, g, kIters, args);
               });
      }
    }
  }

  const int threads = ex.resolved_threads();
  const std::vector<sweep::RunRecord> records = ex.run();
  bench::RecordCursor cur(records);
  const std::size_t at8 = gpus.size() - 1;

  // (a) Jacobi 1D.
  {
    bench::Row base{"baseline (MPI)", {}};
    bench::Row free_r{"cpu-free (NVSHMEM)", {}};
    bench::Row base_comm{"baseline comm", {}};
    bench::Row free_comm{"cpu-free comm", {}};
    for (std::size_t i = 0; i < gpus.size(); ++i) {
      const sweep::RunRecord& rec = cur.next();
      base.values.push_back(rec.value("total_ms"));
      base_comm.values.push_back(rec.value("comm_us"));
    }
    for (std::size_t i = 0; i < gpus.size(); ++i) {
      const sweep::RunRecord& rec = cur.next();
      free_r.values.push_back(rec.value("total_ms"));
      free_comm.values.push_back(rec.value("comm_us"));
    }
    bench::print_table("(a) Jacobi 1D total time", gpus, {base, free_r}, "ms");
    bench::print_table("(a) Jacobi 1D communication latency", gpus,
                       {base_comm, free_comm}, "us");
    std::printf("  at 8 GPUs: total %+6.1f%%   comm latency %+6.1f%%\n\n",
                sim::speedup_percent(base.values[at8], free_r.values[at8]),
                sim::speedup_percent(base_comm.values[at8],
                                     free_comm.values[at8]));
  }

  // (b) Jacobi 2D.
  {
    bench::Row base{"baseline (MPI)", {}};
    bench::Row free_r{"cpu-free (NVSHMEM)", {}};
    bench::Row base_nc{"baseline non-compute %", {}};
    for (std::size_t i = 0; i < gpus.size(); ++i) {
      const sweep::RunRecord& rec = cur.next();
      base.values.push_back(rec.value("total_ms"));
      base_nc.values.push_back(rec.value("noncompute_pct"));
    }
    for (std::size_t i = 0; i < gpus.size(); ++i) {
      free_r.values.push_back(cur.next().value("total_ms"));
    }
    bench::print_table("(b) Jacobi 2D total time", gpus, {base, free_r}, "ms");
    bench::print_table("(b) baseline communication share", gpus, {base_nc},
                       "%");
    std::printf("  at 8 GPUs: total improvement %+6.1f%%\n",
                sim::speedup_percent(base.values[at8], free_r.values[at8]));
    std::printf("  CPU-Free weak-scaling efficiency 1->8 GPUs: %.1f%%\n\n",
                free_r.values[0] / free_r.values[at8] * 100.0);
  }

  bench::emit_records("fig6_3_dace", args, threads, records);
  return 0;
}
