// Figure 6.3 — compiler-generated code: discrete distributed DaCe (MPI)
// versus CPU-Free (persistent + NVSHMEM) on Jacobi 1D and 2D, weak scaling
// on 1-8 A100s.
//
// Shape targets from the paper (at 8 GPUs):
//   * Jacobi 1D: ~45% total-time and ~27% communication-latency improvement
//     (two single-element transfers per step; gains are synchronization);
//   * Jacobi 2D: ~97% improvement; the baseline is >99% communication; the
//     baseline bumps at 2 and 8 GPUs (rectangular process grid); CPU-Free
//     weak-scaling efficiency ~80%.
#include <cstdio>

#include "bench_common.hpp"
#include "dacelite/exec.hpp"
#include "dacelite/frontend.hpp"
#include "dacelite/transforms.hpp"
#include "hostmpi/comm.hpp"
#include "vshmem/world.hpp"

namespace {

struct Point {
  double total_ms;
  double comm_us;
  double noncompute_pct;
};

Point run_1d_baseline(std::size_t n, int ranks, int iters) {
  auto prog = dacelite::make_jacobi1d(n, ranks, iters);
  dacelite::apply_gpu_transform(prog.sdfg);
  vgpu::Machine m(vgpu::MachineSpec::hgx_a100(ranks));
  vshmem::World w(m);
  hostmpi::Comm comm(m);
  dacelite::ProgramData data(w, prog.sdfg, /*functional=*/false);
  dacelite::ExecOptions opt;
  opt.functional = false;
  const auto r = dacelite::execute_discrete(m, comm, data, prog.sdfg, opt);
  return {r.metrics.total_ms(), sim::to_usec(r.metrics.comm),
          r.metrics.noncompute_fraction * 100.0};
}

Point run_1d_cpufree(std::size_t n, int ranks, int iters) {
  auto prog = dacelite::make_jacobi1d(n, ranks, iters);
  dacelite::to_cpu_free(prog.sdfg);
  vgpu::Machine m(vgpu::MachineSpec::hgx_a100(ranks));
  vshmem::World w(m);
  dacelite::ProgramData data(w, prog.sdfg, false);
  dacelite::ExecOptions opt;
  opt.functional = false;
  const auto r = dacelite::execute_persistent(m, w, data, prog.sdfg, opt);
  return {r.metrics.total_ms(), sim::to_usec(r.metrics.comm),
          r.metrics.noncompute_fraction * 100.0};
}

Point run_2d_baseline(std::size_t gx, std::size_t gy, int ranks, int iters) {
  auto prog = dacelite::make_jacobi2d(gx, gy, ranks, iters);
  dacelite::apply_gpu_transform(prog.sdfg);
  vgpu::Machine m(vgpu::MachineSpec::hgx_a100(ranks));
  vshmem::World w(m);
  hostmpi::Comm comm(m);
  dacelite::ProgramData data(w, prog.sdfg, false);
  dacelite::ExecOptions opt;
  opt.functional = false;
  const auto r = dacelite::execute_discrete(m, comm, data, prog.sdfg, opt);
  return {r.metrics.total_ms(), sim::to_usec(r.metrics.comm),
          r.metrics.noncompute_fraction * 100.0};
}

Point run_2d_cpufree(std::size_t gx, std::size_t gy, int ranks, int iters) {
  auto prog = dacelite::make_jacobi2d(gx, gy, ranks, iters);
  dacelite::to_cpu_free(prog.sdfg);
  vgpu::Machine m(vgpu::MachineSpec::hgx_a100(ranks));
  vshmem::World w(m);
  dacelite::ProgramData data(w, prog.sdfg, false);
  dacelite::ExecOptions opt;
  opt.functional = false;
  const auto r = dacelite::execute_persistent(m, w, data, prog.sdfg, opt);
  return {r.metrics.total_ms(), sim::to_usec(r.metrics.comm),
          r.metrics.noncompute_fraction * 100.0};
}

/// Weak scaling: grow the domain with the rank count.
std::size_t weak_1d(std::size_t base, int ranks) {
  return base * static_cast<std::size_t>(ranks);
}
/// Weak 2D scaling: double alternating axes per device doubling so the
/// per-rank block stays constant.
std::pair<std::size_t, std::size_t> weak_2d(std::size_t base, int ranks) {
  std::size_t gx = base, gy = base;
  int r = ranks;
  bool axis = false;
  while (r > 1) {
    if (axis) {
      gx *= 2;
    } else {
      gy *= 2;
    }
    axis = !axis;
    r /= 2;
  }
  return {gx, gy};
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::Args::parse(argc, argv);
  static_cast<void>(args);
  bench::print_header("Figure 6.3",
                      "DaCe-generated: discrete MPI vs CPU-Free (NVSHMEM)");
  bench::print_calibration(vgpu::MachineSpec::hgx_a100(8));

  const std::vector<int> gpus = {1, 2, 4, 8};
  constexpr int kIters = 100;

  // (a) Jacobi 1D.
  {
    bench::Row base{"baseline (MPI)", {}};
    bench::Row free_r{"cpu-free (NVSHMEM)", {}};
    bench::Row base_comm{"baseline comm", {}};
    bench::Row free_comm{"cpu-free comm", {}};
    for (int g : gpus) {
      const std::size_t n = weak_1d(1u << 20, g);  // 1M points per rank
      const Point b = run_1d_baseline(n, g, kIters);
      const Point f = run_1d_cpufree(n, g, kIters);
      base.values.push_back(b.total_ms);
      free_r.values.push_back(f.total_ms);
      base_comm.values.push_back(b.comm_us);
      free_comm.values.push_back(f.comm_us);
    }
    bench::print_table("(a) Jacobi 1D total time", gpus, {base, free_r}, "ms");
    bench::print_table("(a) Jacobi 1D communication latency", gpus,
                       {base_comm, free_comm}, "us");
    const std::size_t at8 = gpus.size() - 1;
    std::printf("  at 8 GPUs: total %+6.1f%%   comm latency %+6.1f%%\n\n",
                sim::speedup_percent(base.values[at8], free_r.values[at8]),
                sim::speedup_percent(base_comm.values[at8],
                                     free_comm.values[at8]));
  }

  // (b) Jacobi 2D.
  {
    bench::Row base{"baseline (MPI)", {}};
    bench::Row free_r{"cpu-free (NVSHMEM)", {}};
    bench::Row base_nc{"baseline non-compute %", {}};
    for (int g : gpus) {
      const auto [gx, gy] = weak_2d(2048, g);
      const Point b = run_2d_baseline(gx, gy, g, kIters);
      const Point f = run_2d_cpufree(gx, gy, g, kIters);
      base.values.push_back(b.total_ms);
      free_r.values.push_back(f.total_ms);
      base_nc.values.push_back(b.noncompute_pct);
    }
    bench::print_table("(b) Jacobi 2D total time", gpus, {base, free_r}, "ms");
    bench::print_table("(b) baseline communication share", gpus, {base_nc},
                       "%");
    const std::size_t at8 = gpus.size() - 1;
    std::printf("  at 8 GPUs: total improvement %+6.1f%%\n",
                sim::speedup_percent(base.values[at8], free_r.values[at8]));
    std::printf("  CPU-Free weak-scaling efficiency 1->8 GPUs: %.1f%%\n\n",
                free_r.values[0] / free_r.values[at8] * 100.0);
  }
  return 0;
}
