// Microbenchmarks of the simulation substrate itself: engine event
// throughput, synchronization primitives, stream ops, transfer accounting
// and a full small stencil run. These measure the SIMULATOR's wall-clock
// performance (how fast experiments run), not simulated time — the
// "items_per_sec" values are host-side throughput, the only nondeterministic
// numbers any driver reports. The simulated end time of each workload is
// still captured in metrics.total and stays bit-identical across runs.
//
// Each workload runs --repeats times inside one sweep job and reports the
// fastest repetition, mirroring the min-of-N protocol of the timing benches.
#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "sim/combinators.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "stencil/problems.hpp"
#include "stencil/runner.hpp"
#include "stencil/variants.hpp"
#include "vgpu/host.hpp"
#include "vgpu/machine.hpp"

namespace {

using Clock = std::chrono::steady_clock;

sim::Task delay_loop(sim::Engine& eng, int n) {
  for (int i = 0; i < n; ++i) co_await eng.delay(10);
}

sim::Task ping(sim::Flag& a, sim::Flag& b, int n) {
  for (int i = 1; i <= n; ++i) {
    a.set(i);
    co_await b.wait_geq(i);
  }
}

sim::Task pong(sim::Flag& a, sim::Flag& b, int n) {
  for (int i = 1; i <= n; ++i) {
    co_await a.wait_geq(i);
    b.set(i);
  }
}

/// Runs `workload` (which returns the number of simulated items processed
/// and fills `sim_end`) `repeats` times; reports the best items/sec.
template <typename Fn>
sweep::RunResult measure(std::string_view name, int repeats,
                         double items_per_rep, const vgpu::MachineSpec& spec,
                         Fn&& workload) {
  sweep::RunResult res;
  res.spec = spec;
  // Substrate microbenchmarks have no data partition: imbalance is 1.0.
  bench::tag_workload(res, name, 1.0);
  double best_sec = 1e300;
  sim::Nanos sim_end = 0;
  for (int rep = 0; rep < repeats; ++rep) {
    const Clock::time_point t0 = Clock::now();
    sim_end = workload();
    const double sec = std::chrono::duration<double>(Clock::now() - t0).count();
    if (sec < best_sec) best_sec = sec;
  }
  res.metrics.total = sim_end;
  res.set("items_per_sec", best_sec > 0.0 ? items_per_rep / best_sec : 0.0);
  res.set("best_wall_ms", best_sec * 1e3);
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::Args::parse(argc, argv);
  if (args.topo) {
    bench::print_topology(vgpu::MachineSpec::hgx_a100(4), "hgx_a100(4)");
    return 0;
  }
  if (args.check) {
    // The end-to-end workload of this bench, under the checker, with middle
    // PEs present (4 GPUs) so both-neighbor protocols are exercised.
    std::vector<bench::CheckCase> cases;
    for (stencil::Variant v :
         {stencil::Variant::kCpuFree, stencil::Variant::kBaselineCopy}) {
      cases.push_back({std::string("full_stencil_run/") +
                           std::string(stencil::variant_name(v)),
                       [v, &args](sim::Observer* o) {
                         stencil::Jacobi2D p;
                         p.nx = 128;
                         p.ny = 128;
                         stencil::StencilConfig cfg;
                         cfg.iterations = 8;
                         cfg.persistent_blocks = 12;
                         cfg.observer = o;
                         (void)stencil::run_jacobi2d(
                             v,
                             args.with_faults(vgpu::MachineSpec::hgx_a100(4)),
                             p, cfg);
                       }});
    }
    return bench::run_check(cases);
  }
  bench::print_header("Micro", "simulator substrate wall-clock throughput");
  // The full-run workload exercises one composition end to end.
  bench::print_policies(
      {{stencil::variant_name(stencil::Variant::kCpuFree),
        stencil::plan_for(stencil::Variant::kCpuFree)}});
  bench::print_faults(args.faults);
  const int repeats = args.repeats > 1 ? args.repeats : 3;

  sweep::Executor ex(args.sweep_options());

  for (const int n : {1024, 16384}) {
    ex.add("engine_delay_events/n=" + std::to_string(n),
           {{"workload", "engine_delay_events"}, {"n", std::to_string(n)}},
           [n, repeats] {
             return measure("engine_delay_events", repeats, n,
                            vgpu::MachineSpec::hgx_a100(1), [n] {
               sim::Engine eng;
               eng.spawn(delay_loop(eng, n));
               eng.run();
               return eng.now();
             });
           });
  }

  ex.add("flag_ping_pong/n=4096",
         {{"workload", "flag_ping_pong"}, {"n", "4096"}}, [repeats] {
           constexpr int n = 4096;
           return measure("flag_ping_pong", repeats, 2.0 * n,
                          vgpu::MachineSpec::hgx_a100(1), [] {
             sim::Engine eng;
             sim::Flag a(eng, 0), b(eng, 0);
             eng.spawn(ping(a, b, n));
             eng.spawn(pong(a, b, n));
             eng.run();
             return eng.now();
           });
         });

  ex.add("stream_ops/n=4096", {{"workload", "stream_ops"}, {"n", "4096"}},
         [repeats, &args] {
           constexpr int n = 4096;
           const vgpu::MachineSpec spec =
               args.with_faults(vgpu::MachineSpec::hgx_a100(1));
           return measure("stream_ops", repeats, n, spec, [&spec] {
             vgpu::Machine m(spec);
             vgpu::Stream& s = m.device(0).create_stream();
             for (int i = 0; i < n; ++i) {
               s.enqueue([&m]() -> sim::Task { co_await m.engine().delay(100); });
             }
             m.engine().run();
             return m.engine().now();
           });
         });

  ex.add("transfer_accounting/n=1000",
         {{"workload", "transfer_accounting"}, {"n", "1000"}},
         [repeats, &args] {
           const vgpu::MachineSpec spec =
               args.with_faults(vgpu::MachineSpec::hgx_a100(2));
           return measure("transfer_accounting", repeats, 1000, spec, [&spec] {
             vgpu::Machine m(spec);
             m.enable_all_peer_access();
             m.engine().spawn([](vgpu::Machine& mm) -> sim::Task {
               for (int i = 0; i < 1000; ++i) {
                 co_await mm.transfer(0, 1, 4096,
                                      vgpu::TransferKind::kDeviceInitiated, 0,
                                      "t");
               }
             }(m));
             m.engine().run();
             return m.engine().now();
           });
         });

  ex.add("full_stencil_run/256x256x4gpus",
         {{"workload", "full_stencil_run"}, {"gpus", "4"}},
         [repeats, &args] {
           const vgpu::MachineSpec spec =
               args.with_faults(vgpu::MachineSpec::hgx_a100(4));
           return measure("full_stencil_run", repeats, 1, spec, [&spec] {
             stencil::Jacobi2D p;
             p.nx = 256;
             p.ny = 256;
             stencil::StencilConfig cfg;
             cfg.iterations = 50;
             cfg.functional = false;
             const auto out = stencil::run_jacobi2d(
                 stencil::Variant::kCpuFree, spec, p, cfg);
             return out.result.metrics.total;
           });
         });

  const int threads = ex.resolved_threads();
  const std::vector<sweep::RunRecord> records = ex.run();

  std::printf("%-36s %16s %14s\n", "workload", "items/sec", "best wall ms");
  for (const sweep::RunRecord& r : records) {
    std::printf("%-36s %16.0f %14.3f\n", r.id.c_str(),
                r.value("items_per_sec"), r.value("best_wall_ms"));
  }
  std::printf("\n");

  bench::emit_records("micro_primitives", args, threads, records);
  return 0;
}
