// google-benchmark microbenchmarks of the simulation substrate itself:
// engine event throughput, synchronization primitives, stream ops, transfer
// accounting and a full small stencil run. These measure the SIMULATOR's
// wall-clock performance (how fast experiments run), not simulated time.
#include <benchmark/benchmark.h>

#include "sim/combinators.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "stencil/problems.hpp"
#include "stencil/runner.hpp"
#include "vgpu/host.hpp"
#include "vgpu/machine.hpp"

namespace {

sim::Task delay_loop(sim::Engine& eng, int n) {
  for (int i = 0; i < n; ++i) co_await eng.delay(10);
}

void BM_EngineDelayEvents(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine eng;
    eng.spawn(delay_loop(eng, n));
    eng.run();
    benchmark::DoNotOptimize(eng.now());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EngineDelayEvents)->Arg(1024)->Arg(16384);

sim::Task ping(sim::Engine& eng, sim::Flag& a, sim::Flag& b, int n) {
  for (int i = 1; i <= n; ++i) {
    a.set(i);
    co_await b.wait_geq(i);
  }
  static_cast<void>(eng);
}

sim::Task pong(sim::Engine& eng, sim::Flag& a, sim::Flag& b, int n) {
  for (int i = 1; i <= n; ++i) {
    co_await a.wait_geq(i);
    b.set(i);
  }
  static_cast<void>(eng);
}

void BM_FlagPingPong(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine eng;
    sim::Flag a(eng, 0), b(eng, 0);
    eng.spawn(ping(eng, a, b, n));
    eng.spawn(pong(eng, a, b, n));
    eng.run();
  }
  state.SetItemsProcessed(state.iterations() * n * 2);
}
BENCHMARK(BM_FlagPingPong)->Arg(4096);

void BM_StreamOps(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    vgpu::MachineSpec spec = vgpu::MachineSpec::hgx_a100(1);
    vgpu::Machine m(spec);
    vgpu::Stream& s = m.device(0).create_stream();
    for (int i = 0; i < n; ++i) {
      s.enqueue([&m]() -> sim::Task { co_await m.engine().delay(100); });
    }
    m.engine().run();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_StreamOps)->Arg(4096);

void BM_TransferAccounting(benchmark::State& state) {
  for (auto _ : state) {
    vgpu::Machine m(vgpu::MachineSpec::hgx_a100(2));
    m.enable_all_peer_access();
    m.engine().spawn([](vgpu::Machine& mm) -> sim::Task {
      for (int i = 0; i < 1000; ++i) {
        co_await mm.transfer(0, 1, 4096, vgpu::TransferKind::kDeviceInitiated,
                             0, "t");
      }
    }(m));
    m.engine().run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_TransferAccounting);

void BM_FullStencilRun(benchmark::State& state) {
  for (auto _ : state) {
    stencil::Jacobi2D p;
    p.nx = 256;
    p.ny = 256;
    stencil::StencilConfig cfg;
    cfg.iterations = 50;
    cfg.functional = false;
    const auto out = stencil::run_jacobi2d(
        stencil::Variant::kCpuFree, vgpu::MachineSpec::hgx_a100(4), p, cfg);
    benchmark::DoNotOptimize(out.result.metrics.total);
  }
}
BENCHMARK(BM_FullStencilRun);

}  // namespace

BENCHMARK_MAIN();
