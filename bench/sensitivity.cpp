// Calibration-sensitivity sweep: are the reproduced findings artifacts of
// the chosen cost-model constants? Each key constant is halved and doubled
// around the default calibration, and two headline claims are re-checked at
// every point:
//   (1) small-domain 2D at 8 GPUs: CPU-Free beats the best CPU-controlled
//       baseline (Fig. 6.1 left);
//   (2) large-domain 2D at 8 GPUs: plain CPU-Free loses to the best baseline
//       while CPU-Free PERKS wins (the Fig. 6.1 right crossover).
// A claim that only holds at the exact calibration point would be suspect;
// the table shows both hold across the whole perturbation grid.
//
// This is the widest sweep in the suite (231 simulations), flattened to one
// job per (knob, scale, domain, variant) point so the executor can spread
// the whole grid across cores. The perturbed MachineSpec is captured in
// every record, so each BENCH row is self-describing.
#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "stencil/problems.hpp"
#include "stencil/runner.hpp"
#include "stencil/variants.hpp"

namespace {

using stencil::StencilConfig;
using stencil::Variant;

struct Claims {
  double small_speedup;   // CPU-Free vs best baseline, small domain
  bool small_wins;
  bool large_cpufree_loses;
  bool large_perks_wins;
};

double run_small(Variant v, const vgpu::MachineSpec& spec) {
  stencil::Jacobi2D p;
  p.nx = 512;
  p.ny = 1024;  // 256^2 base weak-scaled to 8 GPUs
  StencilConfig cfg;
  cfg.iterations = 100;
  cfg.functional = false;
  return stencil::run_jacobi2d(v, spec, p, cfg).result.metrics.per_iteration_us();
}

double run_large(Variant v, const vgpu::MachineSpec& spec) {
  stencil::Jacobi2D p;
  p.nx = 16384;
  p.ny = 32768;  // 8192^2 base weak-scaled to 8 GPUs
  StencilConfig cfg;
  cfg.iterations = 5;
  cfg.functional = false;
  return stencil::run_jacobi2d(v, spec, p, cfg).result.metrics.per_iteration_us();
}

struct Knob {
  const char* name;
  std::function<void(vgpu::MachineSpec&, double)> scale;
};

constexpr Variant kBaselines[] = {Variant::kBaselineCopy,
                                  Variant::kBaselineOverlap,
                                  Variant::kBaselineP2P,
                                  Variant::kBaselineNvshmem};

constexpr Variant kSmallVariants[] = {
    Variant::kBaselineCopy, Variant::kBaselineOverlap, Variant::kBaselineP2P,
    Variant::kBaselineNvshmem, Variant::kCpuFree};
constexpr Variant kLargeVariants[] = {
    Variant::kBaselineCopy, Variant::kBaselineOverlap, Variant::kBaselineP2P,
    Variant::kBaselineNvshmem, Variant::kCpuFree, Variant::kCpuFreePerks};

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::Args::parse(argc, argv);
  if (args.topo) {
    bench::print_topology(vgpu::MachineSpec::hgx_a100(8), "hgx_a100(8)");
    return 0;
  }
  if (args.check) {
    // The checker verdicts must be calibration-independent: a protocol is
    // race-free by construction, not because the costs happen to order it.
    std::vector<bench::CheckCase> cases;
    for (const bool perturbed : {false, true}) {
      for (Variant v : kSmallVariants) {
        cases.push_back({std::string(stencil::variant_name(v)) +
                             (perturbed ? "/half_link_bw" : "/default"),
                         [v, perturbed, &args](sim::Observer* o) {
                           vgpu::MachineSpec spec = args.with_faults(
                               vgpu::MachineSpec::hgx_a100(2));
                           if (perturbed) spec.link.bw_gbps *= 0.5;
                           stencil::Jacobi2D p;
                           p.nx = 128;
                           p.ny = 128;
                           StencilConfig cfg;
                           cfg.iterations = 6;
                           cfg.functional = false;
                           cfg.persistent_blocks = 12;
                           cfg.observer = o;
                           (void)stencil::run_jacobi2d(v, spec, p, cfg);
                         }});
      }
    }
    return bench::run_check(cases);
  }
  bench::print_header("Sensitivity",
                      "headline claims under cost-model perturbation");
  bench::print_calibration(vgpu::MachineSpec::hgx_a100(8));
  bench::print_faults(args.faults);

  {
    std::vector<bench::PolicyRow> policies;
    for (Variant v : kLargeVariants) {
      policies.emplace_back(stencil::variant_name(v), stencil::plan_for(v));
    }
    bench::print_policies(policies);
  }

  const std::vector<Knob> knobs = {
      {"kernel_launch", [](vgpu::MachineSpec& s, double f) {
         s.host.kernel_launch =
             static_cast<sim::Nanos>(static_cast<double>(s.host.kernel_launch) * f);
       }},
      {"stream_sync", [](vgpu::MachineSpec& s, double f) {
         s.host.stream_sync =
             static_cast<sim::Nanos>(static_cast<double>(s.host.stream_sync) * f);
       }},
      {"host_barrier", [](vgpu::MachineSpec& s, double f) {
         s.host.host_barrier =
             static_cast<sim::Nanos>(static_cast<double>(s.host.host_barrier) * f);
       }},
      {"grid_sync", [](vgpu::MachineSpec& s, double f) {
         s.device.grid_sync =
             static_cast<sim::Nanos>(static_cast<double>(s.device.grid_sync) * f);
       }},
      {"link_latency", [](vgpu::MachineSpec& s, double f) {
         s.link.device_initiated_latency = static_cast<sim::Nanos>(
             static_cast<double>(s.link.device_initiated_latency) * f);
         s.link.host_initiated_latency = static_cast<sim::Nanos>(
             static_cast<double>(s.link.host_initiated_latency) * f);
       }},
      {"dram_bw", [](vgpu::MachineSpec& s, double f) {
         s.device.dram_bw_gbps *= f;
       }},
      {"link_bw", [](vgpu::MachineSpec& s, double f) { s.link.bw_gbps *= f; }},
  };
  const double kScales[] = {0.5, 1.0, 2.0};

  sweep::Executor ex(args.sweep_options());
  for (const Knob& k : knobs) {
    for (double f : kScales) {
      vgpu::MachineSpec spec =
          args.with_faults(vgpu::MachineSpec::hgx_a100(8));
      k.scale(spec, f);
      const std::string point =
          std::string(k.name) + "/x" + std::to_string(f);
      auto add = [&](const char* domain, Variant v) {
        ex.add(point + "/" + domain + "/" +
                   std::string(stencil::variant_name(v)),
               {{"knob", k.name},
                {"scale", std::to_string(f)},
                {"domain", domain},
                {"variant", std::string(stencil::variant_name(v))}},
               [spec, v, small = std::string_view(domain) == "small"] {
                 sweep::RunResult res;
                 res.spec = spec;
                 res.set("per_iter_us",
                         small ? run_small(v, spec) : run_large(v, spec));
                 // ny of run_small / run_large over the 8-GPU slab split.
                 bench::tag_workload(
                     res, "jacobi2d",
                     bench::slab_imbalance(small ? 1024 : 32768, 8));
                 return res;
               });
      };
      for (Variant v : kSmallVariants) add("small", v);
      for (Variant v : kLargeVariants) add("large", v);
    }
  }

  const int threads = ex.resolved_threads();
  const std::vector<sweep::RunRecord> records = ex.run();
  bench::RecordCursor cur(records);

  std::printf("%-14s %6s | %18s | %10s | %14s | %12s\n", "knob", "scale",
              "small speedup %", "small wins", "large CF loses",
              "PERKS wins");
  int violations = 0;
  for (const Knob& k : knobs) {
    for (double f : kScales) {
      double small_of[std::size(kSmallVariants)];
      double large_of[std::size(kLargeVariants)];
      for (double& v : small_of) v = cur.next().value("per_iter_us");
      for (double& v : large_of) v = cur.next().value("per_iter_us");
      double best_small = 1e300;
      double best_large = 1e300;
      for (std::size_t i = 0; i < std::size(kBaselines); ++i) {
        best_small = std::min(best_small, small_of[i]);
        best_large = std::min(best_large, large_of[i]);
      }
      const double free_small = small_of[4];
      const double free_large = large_of[4];
      const double perks_large = large_of[5];
      Claims c;
      c.small_speedup = sim::speedup_percent(best_small, free_small);
      c.small_wins = free_small < best_small;
      c.large_cpufree_loses = free_large > best_large;
      c.large_perks_wins = perks_large < best_large;
      std::printf("%-14s %6.1f | %18.1f | %10s | %14s | %12s\n", k.name, f,
                  c.small_speedup, c.small_wins ? "yes" : "NO",
                  c.large_cpufree_loses ? "yes" : "NO",
                  c.large_perks_wins ? "yes" : "NO");
      if (!c.small_wins || !c.large_cpufree_loses || !c.large_perks_wins) {
        ++violations;
      }
    }
  }
  std::printf("\n%s: %d perturbation points violated a headline claim\n\n",
              violations == 0 ? "ROBUST" : "SENSITIVE", violations);

  bench::emit_records("sensitivity", args, threads, records);
  return 0;
}
