// Figure 6.2 — 3D Jacobi (7-point, z-partitioned): weak scaling, no-compute
// communication latency at the largest domain, and strong scaling.
//
// Shape targets from the paper:
//   * weak scaling: CPU-Free ahead of the baselines but by less than in 2D
//     (the large 3D domain is compute-bound);
//   * no-compute at the largest domain: ~59% communication-latency
//     improvement over the CPU-controlled baseline at 8 GPUs;
//   * strong scaling on a fixed large domain: CPU-Free stays largely flat
//     while the baselines degrade as communication dominates.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "stencil/problems.hpp"
#include "stencil/runner.hpp"
#include "stencil/variants.hpp"

namespace {

using stencil::Jacobi3D;
using stencil::StencilConfig;
using stencil::Variant;

Jacobi3D weak_scaled(std::size_t base, int gpus) {
  Jacobi3D p;
  p.nx = base;
  p.ny = base;
  p.nz = base;
  int g = gpus;
  int axis = 0;  // grow z (the partitioned axis) first, then y, then x
  while (g > 1) {
    if (axis == 0) {
      p.nz *= 2;
    } else if (axis == 1) {
      p.ny *= 2;
    } else {
      p.nx *= 2;
    }
    axis = (axis + 1) % 3;
    g /= 2;
  }
  return p;
}

const Variant kVariants[] = {Variant::kBaselineCopy, Variant::kBaselineOverlap,
                             Variant::kBaselineP2P, Variant::kBaselineNvshmem,
                             Variant::kCpuFree};

struct Part {
  const char* key;
  bool compute;
  bool fixed_domain;  // false: weak-scaled 256^3 base
  int iters;
};

constexpr Part kParts[] = {
    {"weak", true, false, 20},
    {"weak_nocompute", false, false, 50},
    {"strong", true, true, 20},
    {"strong_nocompute", false, true, 50},
};

Jacobi3D domain_for(const Part& part, int gpus) {
  if (!part.fixed_domain) return weak_scaled(256, gpus);
  Jacobi3D fixed;
  fixed.nx = 512;
  fixed.ny = 512;
  fixed.nz = 256;
  return fixed;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::Args::parse(argc, argv);
  if (args.topo) {
    bench::print_topology(vgpu::MachineSpec::hgx_a100(8), "hgx_a100(8)");
    return 0;
  }
  if (args.check) {
    std::vector<bench::CheckCase> cases;
    for (Variant v : kVariants) {
      cases.push_back({std::string(stencil::variant_name(v)),
                       [v, &args](sim::Observer* obs) {
                         StencilConfig cfg;
                         cfg.iterations = 6;
                         cfg.persistent_blocks = 12;
                         cfg.observer = obs;
                         (void)stencil::run_jacobi3d(
                             v, args.with_faults(vgpu::MachineSpec::hgx_a100(2)),
                             weak_scaled(16, 2), cfg);
                       }});
    }
    return bench::run_check(cases);
  }
  bench::print_header("Figure 6.2", "3D Jacobi weak/strong scaling");
  bench::print_calibration(vgpu::MachineSpec::hgx_a100(8));
  bench::print_faults(args.faults);

  const std::vector<int> gpus = {1, 2, 4, 8};

  {
    std::vector<bench::PolicyRow> policies;
    for (Variant v : kVariants) {
      policies.emplace_back(stencil::variant_name(v), stencil::plan_for(v));
    }
    bench::print_policies(policies);
  }

  sweep::Executor ex(args.sweep_options());
  for (const Part& part : kParts) {
    for (Variant v : kVariants) {
      for (int g : gpus) {
        ex.add(std::string(part.key) + "/" +
                   std::string(stencil::variant_name(v)) +
                   "/gpus=" + std::to_string(g),
               {{"part", part.key},
                {"variant", std::string(stencil::variant_name(v))},
                {"gpus", std::to_string(g)}},
               [part, v, g, &args] {
                 StencilConfig cfg;
                 cfg.iterations = part.iters;
                 cfg.functional = false;
                 cfg.compute_enabled = part.compute;
                 const vgpu::MachineSpec spec =
                     args.with_faults(vgpu::MachineSpec::hgx_a100(g));
                 const auto out =
                     stencil::run_jacobi3d(v, spec, domain_for(part, g), cfg);
                 sweep::RunResult res;
                 res.spec = spec;
                 res.metrics = out.result.metrics;
                 res.set("per_iter_us", out.result.metrics.per_iteration_us());
                 bench::tag_workload(
                     res, "jacobi3d",
                     bench::slab_imbalance(domain_for(part, g).nz, g));
                 return res;
               });
      }
    }
  }

  const int threads = ex.resolved_threads();
  const std::vector<sweep::RunRecord> records = ex.run();
  bench::RecordCursor cur(records);

  // (left) Weak scaling, 256^3 base.
  {
    std::vector<bench::Row> rows;
    for (Variant v : kVariants) {
      bench::Row r{std::string(stencil::variant_name(v)), {}};
      for (std::size_t i = 0; i < gpus.size(); ++i) {
        r.values.push_back(cur.next().value("per_iter_us"));
      }
      rows.push_back(std::move(r));
    }
    bench::print_table("weak scaling (256^3 base), per-iteration time", gpus,
                       rows, "us/iter");
  }

  // (middle) No-compute communication latency at the largest weak-scaled
  // domain (paper: 58.8% improvement at 8 GPUs).
  {
    std::vector<bench::Row> rows;
    double best_baseline = 1e300;
    double cpufree = 0;
    for (Variant v : kVariants) {
      bench::Row r{std::string(stencil::variant_name(v)), {}};
      for (std::size_t i = 0; i < gpus.size(); ++i) {
        r.values.push_back(cur.next().value("per_iter_us"));
      }
      if (v == Variant::kCpuFree) {
        cpufree = r.values.back();
      } else {
        best_baseline = std::min(best_baseline, r.values.back());
      }
      rows.push_back(std::move(r));
    }
    bench::print_table("no-compute communication latency per iteration", gpus,
                       rows, "us/iter");
    std::printf(
        "  at 8 GPUs: CPU-Free communication latency vs best baseline: "
        "%+6.1f%%\n\n",
        sim::speedup_percent(best_baseline, cpufree));
  }

  // (right) Strong scaling on a fixed large domain, then its no-compute
  // companion.
  for (const char* caption :
       {"strong scaling (512x512x256 fixed), per-iteration time",
        "strong scaling (no compute)"}) {
    std::vector<bench::Row> rows;
    for (Variant v : kVariants) {
      bench::Row r{std::string(stencil::variant_name(v)), {}};
      for (std::size_t i = 0; i < gpus.size(); ++i) {
        r.values.push_back(cur.next().value("per_iter_us"));
      }
      rows.push_back(std::move(r));
    }
    bench::print_table(caption, gpus, rows, "us/iter");
  }

  bench::emit_records("fig6_2_jacobi3d", args, threads, records);
  return 0;
}
