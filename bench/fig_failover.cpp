// Failover study — checkpoint/restart recovery in the multi-tenant job
// server when a device fail-stops mid-run:
//
//   kill-one-device x checkpoint interval
//
// Every cell serves a deterministic all-stencil fleet (the checkpoint-capable
// kind) on ONE shared multi_node machine whose fault plane kills a device the
// first time a resident persistent kernel reaches the kill iteration. Dead
// kernels skip-join to the end and drain cooperatively, survivors' watchdog
// waits escalate into a job-level verdict, and the server releases each
// aborted job's slice, fences the dead device out of the admission
// controller, and re-admits the job onto surviving devices from its newest
// complete checkpoint. Every recovered job must land BITWISE on the unfailed
// serial reference — recovery that only "mostly" restores state is a bug,
// not a data point.
//
// Expected shape: tighter checkpoint intervals lose/replay fewer iterations
// (higher goodput under failure) but pay more simulated checkpoint DRAM
// drain in the failure-free portion of the run; the fleet makespan columns
// show that trade directly.
//
// Extra flags (all strict, fail fast on malformed input):
//   --tenants N                          tenant count (default 3)
//   --serve jobs=N                       jobs per tenant (default 3)
//   --hard-faults kill_device=D,at_iter=K[,ckpt=N]
//       overrides the default kill (device 1, iteration 3); ckpt=N pins the
//       checkpoint-interval axis to {N}.
//
// The final RECOVERED/BROKEN line gates CI: exit is nonzero iff any job
// failed to complete with exact numerics, or a kill cell never exercised a
// failover (a kill that never fires would silently gut the figure).
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "serve/server.hpp"
#include "sim/rng.hpp"

namespace {

/// Salt for the job-shape stream (distinct from fig_multitenant's, so the
/// two figures' fleets are unrelated draws).
constexpr std::uint64_t kShapeSalt = 0xfa110feedull;

/// Checkpoint-interval axis (iterations between snapshots).
constexpr int kCkptAxis[] = {1, 2, 4, 8};

struct FailoverArgs {
  int tenants = 3;
  int jobs_per_tenant = 3;
  serve::ArrivalConfig arrival;

  static FailoverArgs parse(int argc, char** argv) {
    FailoverArgs a;
    a.arrival.mean_interarrival_us = 20.0;
    for (int i = 1; i < argc; ++i) {
      const std::string_view s = argv[i];
      if (s == "--tenants" && i + 1 < argc) {
        const std::string v = argv[++i];
        if (!bench::parse_int_strict(v, a.tenants) || a.tenants < 1) {
          bench::flag_usage_error("--tenants", "an integer >= 1", v);
        }
      } else if (s == "--serve" && i + 1 < argc) {
        bench::parse_kv_flag(
            "--serve", "jobs=N (>=1)", argv[++i],
            [&a](std::string_view key, const std::string& value) {
              if (key == "jobs") {
                return bench::parse_int_strict(value, a.jobs_per_tenant) &&
                       a.jobs_per_tenant >= 1;
              }
              return false;
            });
      }
    }
    return a;
  }
};

/// The deterministic all-stencil fleet one cell serves. Stencil is the
/// restartable kind; iterations are chosen to comfortably straddle the kill
/// iteration so affected jobs really lose (and recover) progress.
std::vector<serve::JobSpec> make_fleet(int tenants, int jobs_per_tenant,
                                       std::uint64_t seed) {
  static constexpr int kDevices[] = {1, 2, 4};
  static constexpr std::size_t kStencilN[] = {48, 64, 96};
  std::vector<serve::JobSpec> jobs;
  jobs.reserve(static_cast<std::size_t>(tenants) *
               static_cast<std::size_t>(jobs_per_tenant));
  int id = 0;
  for (int j = 0; j < jobs_per_tenant; ++j) {
    for (int t = 0; t < tenants; ++t) {
      const std::uint64_t tu = static_cast<std::uint64_t>(t);
      const std::uint64_t ju = static_cast<std::uint64_t>(j);
      serve::JobSpec s;
      s.id = id++;
      s.tenant = "t";
      s.tenant += std::to_string(t);
      s.kind = serve::JobKind::kStencil;
      s.devices = kDevices[sim::stream_mix(seed, kShapeSalt, tu, ju) % 3];
      const std::uint64_t shape = sim::stream_mix(seed, kShapeSalt + 1, tu, ju);
      s.nx = s.ny = kStencilN[shape % 3];
      s.iterations = ((shape >> 8) & 1) != 0 ? 12 : 8;
      // Failures inflate makespans by design; SLO attainment is not what
      // this figure measures.
      s.slo_factor = 64.0;
      jobs.push_back(std::move(s));
    }
  }
  return jobs;
}

struct Cell {
  std::string key;
  bool kill = false;
  int checkpoint_every = 0;
};

sweep::RunResult run_cell(const bench::Args& args, const FailoverArgs& fargs,
                          const Cell& cell, const fault::Config& kill_faults,
                          std::uint64_t cell_seed,
                          serve::ServeReport* report_out,
                          sim::Observer* obs = nullptr) {
  vgpu::MachineSpec spec = vgpu::MachineSpec::multi_node(2, 4);
  spec.faults = kill_faults;
  if (!cell.kill) spec.faults.hard.clear();  // baseline keeps transients only
  spec.pdes_threads = args.pdes_threads;

  serve::ServeConfig cfg;
  cfg.machine = spec;
  cfg.arrival = fargs.arrival;
  cfg.arrival.seed = cell_seed;
  cfg.checkpoint_every = cell.checkpoint_every;
  cfg.observer = obs;
  cfg.compute_isolated = false;  // interference is fig_multitenant's story
  serve::ServeReport rep = serve::run_serve(
      cfg, make_fleet(fargs.tenants, fargs.jobs_per_tenant, cell_seed));

  sweep::RunResult res;
  res.spec = cfg.machine;
  const serve::FleetMetrics& f = rep.fleet;
  res.set("jobs", f.jobs);
  res.set("completed", f.completed);
  res.set("verified", f.verified);
  res.set("rejected", f.rejected);
  res.set("failovers", f.failovers);
  res.set("jobs_lost", f.jobs_lost);
  res.set("requeues", f.requeues);
  res.set("mean_recovery_latency_us", f.mean_recovery_latency_us);
  res.set("lost_iterations", static_cast<double>(f.lost_iterations));
  res.set("replayed_iterations", static_cast<double>(f.replayed_iterations));
  res.set("goodput", f.goodput);
  res.set("fleet_makespan_us", f.fleet_makespan_us);
  bench::tag_workload(res, "serve_failover", 1.0);
  if (report_out != nullptr) *report_out = std::move(rep);
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::Args::parse(argc, argv);
  const FailoverArgs fargs = FailoverArgs::parse(argc, argv);
  if (args.topo) {
    bench::print_topology(vgpu::MachineSpec::multi_node(2, 4), "multi_node");
    return 0;
  }

  // The kill every failure cell runs under: --hard-faults if given, else
  // device 1 dies the first time a resident kernel reaches iteration 3.
  fault::Config kill_faults = args.faults;
  if (!kill_faults.hard_enabled()) {
    fault::HardFault h;
    h.kind = fault::HardFault::Kind::kDevice;
    h.device = 1;
    h.at = 3;
    kill_faults.hard.push_back(h);
    kill_faults.classes |= fault::kClassDeviceDead;
  }

  std::vector<int> ckpt_axis(std::begin(kCkptAxis), std::end(kCkptAxis));
  if (args.hard_checkpoint_every > 0) {
    ckpt_axis = {args.hard_checkpoint_every};
  }

  std::vector<Cell> cells;
  cells.push_back({"baseline", /*kill=*/false, 0});
  for (int every : ckpt_axis) {
    std::string key = "kill/ckpt";
    key += std::to_string(every);
    cells.push_back({std::move(key), /*kill=*/true, every});
  }

  if (args.check) {
    // One small kill cell under the race/deadlock detector: the whole
    // abort/requeue/restore path runs with the checker watching the SHARED
    // machine.
    std::vector<bench::CheckCase> cases;
    FailoverArgs small = fargs;
    small.tenants = 2;
    small.jobs_per_tenant = 2;
    const Cell c{"kill/ckpt2", true, 2};
    cases.push_back(
        {"multi_node/kill/ckpt2",
         [&args, small, c, &kill_faults](sim::Observer* o) {
           (void)run_cell(args, small, c, kill_faults, /*cell_seed=*/11,
                          nullptr, o);
         }});
    return bench::run_check(cases);
  }

  bench::print_header("Failover under device fail-stop",
                      "kill-one-device x checkpoint interval");
  bench::print_calibration(vgpu::MachineSpec::multi_node(2, 4));
  bench::print_faults(kill_faults);
  std::printf(
      "fleet: %d tenant(s) x %d stencil job(s), open arrivals mean %.1f us\n\n",
      fargs.tenants, fargs.jobs_per_tenant, fargs.arrival.mean_interarrival_us);

  std::vector<serve::ServeReport> reports(cells.size());
  sweep::Executor ex(args.sweep_options());
  for (std::size_t ci = 0; ci < cells.size(); ++ci) {
    const Cell& cell = cells[ci];
    const std::uint64_t cell_seed =
        sim::stream_mix(fargs.arrival.seed, kShapeSalt + 7,
                        static_cast<std::uint64_t>(ci), 0);
    serve::ServeReport* slot = &reports[ci];
    ex.add(std::string(cell.key),
           {{"machine", "multi_node"},
            {"kill", cell.kill ? "1" : "0"},
            {"checkpoint_every", std::to_string(cell.checkpoint_every)},
            {"tenants", std::to_string(fargs.tenants)},
            {"jobs_per_tenant", std::to_string(fargs.jobs_per_tenant)}},
           [&args, &fargs, &cell, &kill_faults, cell_seed, slot] {
             return run_cell(args, fargs, cell, kill_faults, cell_seed, slot);
           });
  }

  const int threads = ex.resolved_threads();
  std::vector<sweep::RunRecord> records = ex.run();
  bench::RecordCursor cur(records);

  int broken = 0;
  std::printf("  %-14s %5s %5s %5s %4s %4s %10s %8s %8s %8s %12s\n", "cell",
              "jobs", "ver", "lost", "fo", "rq", "recov us", "lost it",
              "replay", "goodput", "makespan us");
  for (const Cell& cell : cells) {
    const sweep::RunRecord& rec = cur.next();
    const int jobs = static_cast<int>(rec.value("jobs"));
    const int verified = static_cast<int>(rec.value("verified"));
    const int failovers = static_cast<int>(rec.value("failovers"));
    // Gate: EVERY job must finish verified (recovered runs are bitwise
    // checked against the unfailed reference), and a kill cell that never
    // failed over measured nothing.
    broken += jobs - verified;
    if (cell.kill && failovers < 1) ++broken;
    std::printf(
        "  %-14s %5d %5d %5d %4d %4d %10.1f %8.0f %8.0f %8.3f %12.1f\n",
        cell.key.c_str(), jobs, verified,
        static_cast<int>(rec.value("jobs_lost")), failovers,
        static_cast<int>(rec.value("requeues")),
        rec.value("mean_recovery_latency_us"), rec.value("lost_iterations"),
        rec.value("replayed_iterations"), rec.value("goodput"),
        rec.value("fleet_makespan_us"));
  }
  std::printf("\n");

  // One record per job after the per-cell fleet records (same cell order):
  // the recovery timeline each job lived through.
  std::size_t next_index = records.size();
  for (std::size_t ci = 0; ci < cells.size(); ++ci) {
    const serve::ServeReport& rep = reports[ci];
    for (const serve::JobRecord& jr : rep.jobs) {
      sweep::RunRecord rec;
      rec.index = next_index++;
      rec.id = cells[ci].key;
      rec.id += "/job";
      rec.id += std::to_string(jr.spec.id);
      rec.params = {{"cell", cells[ci].key},
                    {"job_id", std::to_string(jr.spec.id)},
                    {"tenant", jr.spec.tenant},
                    {"devices", std::to_string(jr.spec.devices)}};
      rec.out.spec = vgpu::MachineSpec::multi_node(2, 4);
      bench::tag_workload(rec.out, "stencil", 1.0);
      rec.out.set("arrival_us", sim::to_usec(jr.out.arrival));
      rec.out.set("admit_us", sim::to_usec(jr.out.admit));
      rec.out.set("end_us", sim::to_usec(jr.out.end));
      rec.out.set("makespan_us", sim::to_usec(jr.out.makespan()));
      rec.out.set("verified", jr.out.verified ? 1.0 : 0.0);
      rec.out.set("attempts", jr.out.attempts);
      rec.out.set("lost", jr.out.lost ? 1.0 : 0.0);
      rec.out.set("restarted_from", jr.out.restarted_from);
      rec.out.set("aborted_at_us", sim::to_usec(jr.out.aborted_at));
      rec.out.set("resumed_at_us", sim::to_usec(jr.out.resumed_at));
      rec.out.set("recovery_latency_us",
                  sim::to_usec(jr.out.recovery_latency()));
      rec.out.set("lost_iterations",
                  static_cast<double>(jr.out.lost_iterations));
      rec.out.set("replayed_iterations",
                  static_cast<double>(jr.out.replayed_iterations));
      rec.out.set("first_device", jr.out.first_device);
      rec.out.note("detail", jr.out.detail);
      records.push_back(std::move(rec));
    }
  }

  std::printf("%s: %zu cell(s), %d broken\n\n",
              broken == 0 ? "RECOVERED" : "BROKEN", cells.size(), broken);

  bench::emit_records("fig_failover", args, threads, records);
  return broken == 0 ? 0 : 1;
}
