// Shared reporting helpers for the figure-reproduction benchmarks.
//
// Each bench binary regenerates one table/figure from the paper's evaluation
// chapter: it sweeps the same parameters, runs the same code variants on the
// simulated HGX node, and prints the series the figure plots. The simulator
// is deterministic, so the paper's "minimum of 5 consecutive runs" protocol
// is satisfied by a single run (all 5 would be identical); each harness
// still exposes --repeats to demonstrate that.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "sim/stats.hpp"
#include "sim/time.hpp"
#include "vgpu/costmodel.hpp"

namespace bench {

inline void print_header(std::string_view figure, std::string_view title) {
  std::printf("==============================================================\n");
  std::printf("%.*s — %.*s\n", static_cast<int>(figure.size()), figure.data(),
              static_cast<int>(title.size()), title.data());
  std::printf("==============================================================\n");
}

inline void print_calibration(const vgpu::MachineSpec& spec) {
  std::printf(
      "machine: %d x A100 (%d SMs, %.0f GB/s HBM @ %.0f%% eff), NVLink "
      "%.0f GB/s/dir\n",
      spec.num_devices, spec.device.sm_count, spec.device.dram_bw_gbps,
      spec.device.dram_efficiency * 100.0, spec.link.bw_gbps);
  std::printf(
      "host costs (us): launch %.1f  stream_sync %.1f  memcpy_issue %.1f  "
      "barrier %.1f  mpi_issue %.1f\n",
      sim::to_usec(spec.host.kernel_launch), sim::to_usec(spec.host.stream_sync),
      sim::to_usec(spec.host.memcpy_issue), sim::to_usec(spec.host.host_barrier),
      sim::to_usec(spec.host.mpi_issue));
  std::printf(
      "device costs (us): grid_sync %.1f  put_issue %.1f  link lat %.1f "
      "(dev) / %.1f (host)\n\n",
      sim::to_usec(spec.device.grid_sync),
      sim::to_usec(spec.link.device_put_issue),
      sim::to_usec(spec.link.device_initiated_latency),
      sim::to_usec(spec.link.host_initiated_latency));
}

/// One table row: label + one value per GPU count.
struct Row {
  std::string label;
  std::vector<double> values;
};

inline void print_table(std::string_view caption,
                        const std::vector<int>& gpu_counts,
                        const std::vector<Row>& rows,
                        std::string_view unit) {
  std::printf("%.*s [%.*s]\n", static_cast<int>(caption.size()), caption.data(),
              static_cast<int>(unit.size()), unit.data());
  std::printf("  %-24s", "variant");
  for (int g : gpu_counts) std::printf("  %8d GPU%s", g, g == 1 ? " " : "s");
  std::printf("\n");
  for (const Row& r : rows) {
    std::printf("  %-24s", r.label.c_str());
    for (double v : r.values) std::printf("  %12.2f", v);
    std::printf("\n");
  }
  std::printf("\n");
}

/// Speedup% table against a baseline row (the paper's formula).
inline void print_speedups(std::string_view caption,
                           const std::vector<int>& gpu_counts,
                           const Row& baseline, const Row& ours) {
  std::printf("%.*s\n", static_cast<int>(caption.size()), caption.data());
  for (std::size_t i = 0; i < gpu_counts.size(); ++i) {
    std::printf("  %d GPUs: %+6.1f%%\n", gpu_counts[i],
                sim::speedup_percent(baseline.values[i], ours.values[i]));
  }
  std::printf("\n");
}

/// Parses "--repeats N" / "--trace" style flags trivially.
struct Args {
  int repeats = 1;
  bool trace_dump = false;
  std::string trace_path = "trace.json";

  static Args parse(int argc, char** argv) {
    Args a;
    for (int i = 1; i < argc; ++i) {
      const std::string_view s = argv[i];
      if (s == "--repeats" && i + 1 < argc) {
        a.repeats = std::atoi(argv[++i]);
      } else if (s == "--trace") {
        a.trace_dump = true;
        if (i + 1 < argc && argv[i + 1][0] != '-') a.trace_path = argv[++i];
      }
    }
    if (a.repeats < 1) a.repeats = 1;
    return a;
  }
};

}  // namespace bench
