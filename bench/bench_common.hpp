// Shared reporting helpers for the figure-reproduction benchmarks.
//
// Each bench binary regenerates one table/figure from the paper's evaluation
// chapter: it sweeps the same parameters, runs the same code variants on the
// simulated HGX node, and prints the series the figure plots. The simulator
// is deterministic, so the paper's "minimum of 5 consecutive runs" protocol
// is satisfied by a single run (all 5 would be identical); each harness
// still exposes --repeats to demonstrate that.
#pragma once

#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "check/detector.hpp"
#include "exec/policy.hpp"
#include "fault/schedule.hpp"
#include "sim/engine.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"
#include "sweep/emit.hpp"
#include "sweep/executor.hpp"
#include "topo/router.hpp"
#include "vgpu/costmodel.hpp"

namespace bench {

inline void print_header(std::string_view figure, std::string_view title) {
  std::printf("==============================================================\n");
  std::printf("%.*s — %.*s\n", static_cast<int>(figure.size()), figure.data(),
              static_cast<int>(title.size()), title.data());
  std::printf("==============================================================\n");
}

inline void print_calibration(const vgpu::MachineSpec& spec) {
  std::printf(
      "machine: %d x A100 (%d SMs, %.0f GB/s HBM @ %.0f%% eff), NVLink "
      "%.0f GB/s/dir\n",
      spec.num_devices, spec.device.sm_count, spec.device.dram_bw_gbps,
      spec.device.dram_efficiency * 100.0, spec.link.bw_gbps);
  std::printf(
      "host costs (us): launch %.1f  stream_sync %.1f  memcpy_issue %.1f  "
      "barrier %.1f  mpi_issue %.1f\n",
      sim::to_usec(spec.host.kernel_launch), sim::to_usec(spec.host.stream_sync),
      sim::to_usec(spec.host.memcpy_issue), sim::to_usec(spec.host.host_barrier),
      sim::to_usec(spec.host.mpi_issue));
  std::printf(
      "device costs (us): grid_sync %.1f  put_issue %.1f  link lat %.1f "
      "(dev) / %.1f (host)\n\n",
      sim::to_usec(spec.device.grid_sync),
      sim::to_usec(spec.link.device_put_issue),
      sim::to_usec(spec.link.device_initiated_latency),
      sim::to_usec(spec.link.host_initiated_latency));
}

/// Dumps the machine's interconnect graph (nodes, links) and the fixed route
/// the Router picked for every ordered device pair. Backs the --topo flag:
/// every bench driver prints this for its machine and exits, so a reader can
/// see exactly which wires each transfer will be charged on.
inline void print_topology(const vgpu::MachineSpec& spec,
                           std::string_view label) {
  const topo::Topology t = vgpu::resolve_topology(spec);
  const topo::Router router(t);
  std::printf("topology: %.*s (%d device(s), %zu node(s), %zu link(s))\n",
              static_cast<int>(label.size()), label.data(), t.num_devices(),
              t.nodes.size(), t.links.size());
  std::printf("nodes:\n");
  for (std::size_t i = 0; i < t.nodes.size(); ++i) {
    const char* kind = "?";
    switch (t.nodes[i].kind) {
      case topo::NodeKind::kDevice: kind = "device"; break;
      case topo::NodeKind::kSwitch: kind = "switch"; break;
      case topo::NodeKind::kNic: kind = "nic"; break;
      case topo::NodeKind::kHostBridge: kind = "host-bridge"; break;
    }
    std::printf("  [%2zu] %-12s %s\n", i, kind, t.nodes[i].name.c_str());
  }
  std::printf("links:\n");
  for (std::size_t i = 0; i < t.links.size(); ++i) {
    const topo::Link& l = t.links[i];
    std::printf("  [%2zu] %-24s %s -> %s  %.0f GB/s  +%.1f us  %s\n", i,
                l.name.c_str(),
                t.nodes[static_cast<std::size_t>(l.src)].name.c_str(),
                t.nodes[static_cast<std::size_t>(l.dst)].name.c_str(),
                l.bw_gbps, sim::to_usec(l.extra_latency), topo::name(l.policy));
  }
  std::printf("routes (per ordered device pair):\n");
  for (int s = 0; s < t.num_devices(); ++s) {
    for (int d = 0; d < t.num_devices(); ++d) {
      if (s == d) continue;
      const topo::Route& r = router.route(s, d);
      std::string path;
      for (int link_id : r.links) {
        if (!path.empty()) path += " -> ";
        path += t.links[static_cast<std::size_t>(link_id)].name;
      }
      std::printf("  %d -> %d: %s  (bottleneck %.0f GB/s, +%.1f us%s)\n", s, d,
                  path.c_str(), r.min_bw, sim::to_usec(r.extra_latency),
                  r.contended ? ", contended" : "");
    }
  }
  std::printf("\n");
}

/// A named (launch, comm, sync) composition to list in the report header.
using PolicyRow = std::pair<std::string_view, exec::Plan>;

/// Prints the exec-layer policy triple behind each evaluated variant, so the
/// report states the composition (§4.1) each variant name stands for.
inline void print_policies(const std::vector<PolicyRow>& rows) {
  std::printf("execution policies (launch, comm, sync):\n");
  for (const auto& [label, plan] : rows) {
    const std::string_view l = exec::name(plan.launch);
    const std::string_view c = exec::name(plan.comm);
    const std::string_view s = exec::name(plan.sync);
    std::printf("  %-24.*s (%.*s, %.*s, %.*s)\n",
                static_cast<int>(label.size()), label.data(),
                static_cast<int>(l.size()), l.data(),
                static_cast<int>(c.size()), c.data(),
                static_cast<int>(s.size()), s.data());
  }
  std::printf("\n");
}

/// Tags a run result with its workload family and realized
/// partition-imbalance factor, so every cpufree-bench-v1 record
/// self-describes what ran and how skewed its per-rank partition was.
inline void tag_workload(sweep::RunResult& r, std::string_view kind,
                         double partition_imbalance) {
  r.workload = std::string(kind);
  r.partition_imbalance = partition_imbalance;
}

/// Imbalance factor of the even slab row split the regular workloads use:
/// max rows per rank / mean rows per rank (exactly 1.0 when ranks | ny).
[[nodiscard]] inline double slab_imbalance(std::size_t ny, int ranks) {
  if (ranks <= 0 || ny == 0) return 1.0;
  const std::size_t ru = static_cast<std::size_t>(ranks);
  const std::size_t max_rows = ny / ru + (ny % ru != 0 ? 1 : 0);
  return static_cast<double>(max_rows) * static_cast<double>(ru) /
         static_cast<double>(ny);
}

/// One table row: label + one value per GPU count.
struct Row {
  std::string label;
  std::vector<double> values;
};

inline void print_table(std::string_view caption,
                        const std::vector<int>& gpu_counts,
                        const std::vector<Row>& rows,
                        std::string_view unit) {
  std::printf("%.*s [%.*s]\n", static_cast<int>(caption.size()), caption.data(),
              static_cast<int>(unit.size()), unit.data());
  std::printf("  %-24s", "variant");
  for (int g : gpu_counts) std::printf("  %8d GPU%s", g, g == 1 ? " " : "s");
  std::printf("\n");
  for (const Row& r : rows) {
    std::printf("  %-24s", r.label.c_str());
    for (double v : r.values) std::printf("  %12.2f", v);
    std::printf("\n");
  }
  std::printf("\n");
}

/// Speedup% table against a baseline row (the paper's formula).
inline void print_speedups(std::string_view caption,
                           const std::vector<int>& gpu_counts,
                           const Row& baseline, const Row& ours) {
  std::printf("%.*s\n", static_cast<int>(caption.size()), caption.data());
  for (std::size_t i = 0; i < gpu_counts.size(); ++i) {
    std::printf("  %d GPUs: %+6.1f%%\n", gpu_counts[i],
                sim::speedup_percent(baseline.values[i], ours.values[i]));
  }
  std::printf("\n");
}

/// Prints a usage message for a malformed flag payload and exits. Bench
/// flags fail fast, they never guess.
[[noreturn]] inline void flag_usage_error(std::string_view flag,
                                          std::string_view expected,
                                          std::string_view got) {
  std::fprintf(stderr, "%.*s: expected %.*s, got \"%.*s\"\n",
               static_cast<int>(flag.size()), flag.data(),
               static_cast<int>(expected.size()), expected.data(),
               static_cast<int>(got.size()), got.data());
  std::exit(2);
}

/// strtoull with the endptr discipline the naive call skips: the WHOLE token
/// must be digits. "12x", "-3" (strtoull silently negates!), "" and "0x10"
/// all previously slid through as plausible-looking seeds.
inline bool parse_u64_strict(const std::string& v, std::uint64_t& out) {
  if (v.empty() || v[0] == '-' || v[0] == '+') return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long r = std::strtoull(v.c_str(), &end, 10);
  if (errno != 0 || end != v.c_str() + v.size()) return false;
  out = r;
  return true;
}

/// strtod with full-token validation; rejects nan/inf and trailing junk
/// ("0.05GHz" used to parse as 0.05).
inline bool parse_double_strict(const std::string& v, double& out) {
  if (v.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const double r = std::strtod(v.c_str(), &end);
  if (errno != 0 || end != v.c_str() + v.size() || !std::isfinite(r)) {
    return false;
  }
  out = r;
  return true;
}

/// Full-token int parse for flag operands ("--pdes-threads 4x" is an error,
/// not 4).
inline bool parse_int_strict(const std::string& v, int& out) {
  std::uint64_t u = 0;
  if (v.size() > 1 && v[0] == '-') {
    if (!parse_u64_strict(v.substr(1), u) ||
        u > 1ull << 31) {
      return false;
    }
    out = static_cast<int>(-static_cast<std::int64_t>(u));
    return true;
  }
  if (!parse_u64_strict(v, u) || u > 1ull << 30) return false;
  out = static_cast<int>(u);
  return true;
}

/// Walks a "key=value,key=value" flag payload and hands each pair to
/// `field`. A false return (unknown key, malformed value) — or a pair with
/// no '=' or an empty value — aborts with the canonical usage message.
/// Every key=value bench flag (--faults, --serve, --arrival) shares this
/// contract: whole-token validation, fail fast, never guess.
inline void parse_kv_flag(
    std::string_view flag, std::string_view expected, std::string_view s,
    const std::function<bool(std::string_view key, const std::string& value)>&
        field) {
  std::size_t pos = 0;
  while (pos <= s.size()) {
    std::size_t end = s.find(',', pos);
    if (end == std::string_view::npos) end = s.size();
    const std::string_view kv = s.substr(pos, end - pos);
    const std::size_t eq = kv.find('=');
    const std::string_view key = kv.substr(0, eq);
    const std::string value(eq == std::string_view::npos ? std::string_view()
                                                         : kv.substr(eq + 1));
    if (eq == std::string_view::npos || value.empty() || !field(key, value)) {
      flag_usage_error(flag, expected, s);
    }
    pos = end + 1;
  }
}

/// Parses the --faults payload "seed=S,rate=R[,resilience=none|retry|
/// retry+degrade][,classes=a+b+...]" into a fault::Config. Exits with a
/// usage message on malformed input (bench flags fail fast, they never
/// guess). `classes=` restricts injection to the named window classes
/// (link, flap, stall, signal_lost, signal_delay, put_drop, put_dup, or
/// `all`); link/stall-only masks are exactly the ones the sharded engine
/// can run without lockstep rounds.
inline fault::Config parse_faults(std::string_view s) {
  fault::Config cfg;
  parse_kv_flag(
      "--faults",
      "seed=S,rate=R (0<=R<=1)[,resilience=none|retry|retry+degrade]"
      "[,classes=link+flap+stall+signal_lost+signal_delay+put_drop+put_dup"
      "|all]",
      s, [&cfg](std::string_view key, const std::string& value) {
        if (key == "seed") return parse_u64_strict(value, cfg.seed);
        if (key == "rate") {
          return parse_double_strict(value, cfg.rate) && cfg.rate >= 0.0 &&
                 cfg.rate <= 1.0;
        }
        if (key == "classes") {
          unsigned mask = 0;
          std::string_view rest = value;
          while (!rest.empty()) {
            std::size_t plus = rest.find('+');
            const std::string_view tok = rest.substr(0, plus);
            if (tok == "link") mask |= fault::kClassLink;
            else if (tok == "flap") mask |= fault::kClassFlap;
            else if (tok == "stall") mask |= fault::kClassStall;
            else if (tok == "signal_lost") mask |= fault::kClassSignalLost;
            else if (tok == "signal_delay") mask |= fault::kClassSignalDelay;
            else if (tok == "put_drop") mask |= fault::kClassPutDrop;
            else if (tok == "put_dup") mask |= fault::kClassPutDup;
            else if (tok == "all") mask |= fault::kClassAll;
            else return false;
            if (plus == std::string_view::npos) break;
            rest = rest.substr(plus + 1);
          }
          if (mask == 0) return false;
          cfg.classes = mask;
          return true;
        }
        if (key == "resilience") {
          if (value == "none" || value == "no-retry") {
            cfg.resilience = fault::Resilience::kNone;
          } else if (value == "retry") {
            cfg.resilience = fault::Resilience::kRetry;
          } else if (value == "retry+degrade" || value == "degrade") {
            cfg.resilience = fault::Resilience::kRetryDegrade;
          } else {
            return false;
          }
          return true;
        }
        return false;
      });
  return cfg;
}

/// Parses the strict --hard-faults payload "kill_device=D,at_iter=K[,ckpt=N]"
/// into a permanent device fail-stop appended to `cfg.hard`: device D is
/// declared dead the first time a resident persistent kernel reaches
/// iteration K (it completes 1..K-1 and never executes K). ckpt=N sets the
/// recovery checkpoint interval for drivers that fail over (fig_failover);
/// drivers without a recovery path ignore it. Exits 2 with the canonical
/// usage message on malformed input — hard faults kill hardware, so a typo
/// must never half-parse into a different kill.
inline void parse_hard_faults(std::string_view s, fault::Config& cfg,
                              int& checkpoint_every) {
  constexpr std::string_view kExpected =
      "kill_device=D (D>=0),at_iter=K (K>=1)[,ckpt=N (N>=1)]";
  fault::HardFault h;
  h.kind = fault::HardFault::Kind::kDevice;
  bool have_device = false;
  bool have_iter = false;
  parse_kv_flag(
      "--hard-faults", kExpected, s,
      [&](std::string_view key, const std::string& value) {
        if (key == "kill_device") {
          have_device = parse_int_strict(value, h.device) && h.device >= 0;
          return have_device;
        }
        if (key == "at_iter") {
          int k = 0;
          have_iter = parse_int_strict(value, k) && k >= 1;
          h.at = k;
          return have_iter;
        }
        if (key == "ckpt") {
          return parse_int_strict(value, checkpoint_every) &&
                 checkpoint_every >= 1;
        }
        return false;
      });
  if (!have_device || !have_iter) flag_usage_error("--hard-faults", kExpected, s);
  cfg.hard.push_back(h);
  cfg.classes |= fault::kClassDeviceDead;
}

/// Parses "--repeats N" / "--threads N" / "--trace" style flags trivially.
struct Args {
  int repeats = 1;
  /// Sweep worker threads; 0 = all hardware threads, 1 = sequential.
  int threads = 0;
  bool progress = true;
  /// --check: skip the sweep; run each variant once under the race/deadlock
  /// checker (src/check/) on a small instance and print a verdict per case.
  bool check = false;
  /// --topo: print the machine's interconnect graph and every device-pair
  /// route, then exit without sweeping.
  bool topo = false;
  bool trace_dump = false;
  std::string trace_path = "trace.json";
  std::string out_json;  // --out PATH; default BENCH_<name>.json
  std::string out_csv;   // --csv PATH; no CSV when empty
  /// --faults seed=S,rate=R[,resilience=...]: the fault plane every swept
  /// machine runs under. Default (rate 0) is structurally inert.
  fault::Config faults;
  /// --hard-faults kill_device=D,at_iter=K[,ckpt=N]: permanent device
  /// fail-stop layered onto `faults` (repeatable). ckpt lands here; only
  /// recovery-capable drivers consume it.
  int hard_checkpoint_every = 0;
  /// --pdes-threads N: worker threads for the intra-run sharded event
  /// engine. 1 (default) is the serial engine, byte-for-byte.
  int pdes_threads = 1;
  /// --tune: skip the sweep; run the recipe autotuner (src/tune/) on the
  /// driver's tunable workloads and report predicted vs measured times.
  bool tune = false;
  /// --tune-budget N: cap the enumerated candidate space (0 = full space).
  int tune_budget = 0;

  static Args parse(int argc, char** argv) {
    Args a;
    for (int i = 1; i < argc; ++i) {
      const std::string_view s = argv[i];
      if (s == "--repeats" && i + 1 < argc) {
        a.repeats = std::atoi(argv[++i]);
      } else if (s == "--threads" && i + 1 < argc) {
        a.threads = std::atoi(argv[++i]);
      } else if (s == "--pdes-threads" && i + 1 < argc) {
        const std::string v = argv[++i];
        if (!parse_int_strict(v, a.pdes_threads) || a.pdes_threads < 1) {
          flag_usage_error("--pdes-threads", "an integer >= 1", v);
        }
      } else if (s.rfind("--pdes-threads=", 0) == 0) {
        const std::string v(s.substr(sizeof("--pdes-threads=") - 1));
        if (!parse_int_strict(v, a.pdes_threads) || a.pdes_threads < 1) {
          flag_usage_error("--pdes-threads", "an integer >= 1", v);
        }
      } else if (s == "--quiet") {
        a.progress = false;
      } else if (s == "--check") {
        a.check = true;
      } else if (s == "--tune") {
        a.tune = true;
      } else if (s == "--tune-budget" && i + 1 < argc) {
        const std::string v = argv[++i];
        if (!parse_int_strict(v, a.tune_budget) || a.tune_budget < 0) {
          flag_usage_error("--tune-budget", "an integer >= 0", v);
        }
      } else if (s.rfind("--tune-budget=", 0) == 0) {
        const std::string v(s.substr(sizeof("--tune-budget=") - 1));
        if (!parse_int_strict(v, a.tune_budget) || a.tune_budget < 0) {
          flag_usage_error("--tune-budget", "an integer >= 0", v);
        }
      } else if (s == "--topo") {
        a.topo = true;
      } else if (s == "--faults" && i + 1 < argc) {
        a.faults = parse_faults(argv[++i]);
      } else if (s == "--hard-faults" && i + 1 < argc) {
        parse_hard_faults(argv[++i], a.faults, a.hard_checkpoint_every);
      } else if (s.rfind("--hard-faults=", 0) == 0) {
        parse_hard_faults(s.substr(sizeof("--hard-faults=") - 1), a.faults,
                          a.hard_checkpoint_every);
      } else if (s == "--out" && i + 1 < argc) {
        a.out_json = argv[++i];
      } else if (s == "--csv" && i + 1 < argc) {
        a.out_csv = argv[++i];
      } else if (s == "--trace") {
        a.trace_dump = true;
        if (i + 1 < argc && argv[i + 1][0] != '-') a.trace_path = argv[++i];
      }
    }
    if (a.repeats < 1) a.repeats = 1;
    return a;
  }

  [[nodiscard]] sweep::Options sweep_options() const {
    sweep::Options o;
    o.threads = threads;
    o.progress = progress;
    return o;
  }

  /// Applies the --faults and --pdes-threads configuration to a machine
  /// spec (identity when neither flag was given). Drivers route every spec
  /// they sweep through this.
  [[nodiscard]] vgpu::MachineSpec with_faults(vgpu::MachineSpec spec) const {
    spec.faults = faults;
    spec.pdes_threads = pdes_threads;
    return spec;
  }
};

/// One line stating the fault plane a sweep runs under (printed only when
/// --faults enabled it, so faultless reports are unchanged).
inline void print_faults(const fault::Config& cfg) {
  if (cfg.enabled()) {
    std::printf(
        "fault plane: seed=%llu rate=%g resilience=%s (retries %d, watchdog "
        "%.0f us + %.0f us/attempt)\n\n",
        static_cast<unsigned long long>(cfg.seed), cfg.rate,
        fault::name(cfg.resilience), cfg.retry.max_retries,
        sim::to_usec(cfg.retry.timeout), sim::to_usec(cfg.retry.backoff));
  }
  if (cfg.hard_enabled()) {
    for (const fault::HardFault& h : cfg.hard) {
      if (h.kind == fault::HardFault::Kind::kDevice) {
        std::printf("hard fault: kill device %d at iteration %lld\n", h.device,
                    static_cast<long long>(h.at));
      } else {
        std::printf("hard fault: kill link %d->%d at crossing %lld\n", h.src,
                    h.dst, static_cast<long long>(h.at));
      }
    }
    std::printf("\n");
  }
}

/// One workload validated under --check. `run` must attach the observer to
/// the engine it builds (e.g. via StencilConfig/CgConfig::observer, or
/// machine.engine().set_observer) before allocating or launching anything.
struct CheckCase {
  std::string label;
  std::function<void(sim::Observer*)> run;
};

/// Runs every case under a fresh happens-before race / deadlock detector
/// and prints one PASS/RACE/DEADLOCK verdict per case. Returns the process
/// exit code: 0 iff every case is clean.
inline int run_check(const std::vector<CheckCase>& cases) {
  int dirty = 0;
  for (const CheckCase& c : cases) {
    check::Detector det;
    try {
      c.run(&det);
    } catch (const sim::DeadlockError&) {
      // Already diagnosed: Engine::run publishes on_deadlock pre-throw.
    }
    std::printf("[%s] %s\n", c.label.c_str(), det.report_text().c_str());
    if (!det.clean()) ++dirty;
  }
  std::printf("--check: %zu case(s), %d dirty -> %s\n", cases.size(), dirty,
              dirty == 0 ? "PASS" : "FAIL");
  return dirty == 0 ? 0 : 1;
}

/// Walks sweep records in submission order. The drivers queue jobs in the
/// same nested-loop structure they later build tables in, so consuming the
/// record vector front-to-back lines every record up with its table cell.
class RecordCursor {
 public:
  explicit RecordCursor(const std::vector<sweep::RunRecord>& records)
      : records_(&records) {}

  const sweep::RunRecord& next() {
    if (i_ >= records_->size()) {
      throw std::logic_error("bench: record cursor ran past the sweep");
    }
    return (*records_)[i_++];
  }

  [[nodiscard]] bool exhausted() const noexcept {
    return i_ == records_->size();
  }

 private:
  const std::vector<sweep::RunRecord>* records_;
  std::size_t i_ = 0;
};

/// Emits the structured outputs for a finished sweep: BENCH_<name>.json
/// (always; --out overrides the path) and a CSV when --csv was given.
inline void emit_records(std::string_view bench_name, const Args& args,
                         int threads,
                         const std::vector<sweep::RunRecord>& records) {
  const std::string json_path =
      args.out_json.empty() ? "BENCH_" + std::string(bench_name) + ".json"
                            : args.out_json;
  try {
    sweep::write_file(json_path,
                      sweep::bench_json(bench_name, threads, records));
    std::printf("wrote %zu run records to %s\n", records.size(),
                json_path.c_str());
    if (!args.out_csv.empty()) {
      sweep::write_file(args.out_csv, sweep::bench_csv(records));
      std::printf("wrote CSV to %s\n", args.out_csv.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    std::exit(1);
  }
  std::printf("\n");
}

}  // namespace bench
