// fig_autotune — the compiler-support autotuner across machines.
//
// For each (workload, machine) pair, enumerate the recipe decision space
// (put expansion x persistent grid size x map fusion x partition shape),
// score every candidate with the analytic rollout, validate the default
// recipe plus the predicted top-K with full simulated runs (numerics
// verified against the serial reference, race/deadlock checker attached),
// and report predicted vs measured per candidate. The closing table shows
// where the tuned recipe beats the §6.2.1 default: the SM-count grid loses
// to the occupancy cap once the per-rank domain overflows the resident
// threads, and rectangular machines prefer partition shapes that avoid
// strided west/east puts.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "dacelite/exec.hpp"
#include "dacelite/frontend.hpp"
#include "dacelite/pass.hpp"
#include "tune/tuner.hpp"
#include "tune_report.hpp"
#include "vshmem/world.hpp"

namespace {

struct MachineCfg {
  const char* name;
  vgpu::MachineSpec spec;
};

std::vector<MachineCfg> machines() {
  return {
      {"hgx_a100_x4", vgpu::MachineSpec::hgx_a100(4)},
      {"dgx_pcie_x4", vgpu::MachineSpec::dgx_pcie(4)},
      {"multi_node_2x2", vgpu::MachineSpec::multi_node(2, 2)},
  };
}

std::vector<tune::Workload> workloads() {
  tune::Workload j1d;
  j1d.kind = tune::WorkloadKind::kJacobi1D;
  j1d.gx = std::size_t{1} << 16;
  j1d.ranks = 4;
  j1d.iterations = 10;
  tune::Workload j2d;
  j2d.kind = tune::WorkloadKind::kJacobi2D;
  j2d.gx = 800;
  j2d.gy = 800;
  j2d.ranks = 4;
  j2d.iterations = 10;
  return {j1d, j2d};
}

/// --check: one small validation run per forced expansion under the
/// race/deadlock checker — the tuner explores exactly these backends, so the
/// explored configurations must be observably clean, not just fast.
void check_candidate(dacelite::ExpansionChoice expansion,
                     const bench::Args& args, sim::Observer* obs) {
  auto prog = dacelite::make_jacobi2d(64, 128, 2, 8);
  dacelite::Recipe recipe = dacelite::Recipe::cpu_free_default();
  recipe.expansion = expansion;
  dacelite::Pipeline().apply(prog.sdfg, recipe);
  const vgpu::MachineSpec spec =
      args.with_faults(vgpu::MachineSpec::hgx_a100(2));
  vgpu::Machine m(spec);
  m.engine().set_observer(obs);
  vshmem::World w(m);
  dacelite::ProgramData data(w, prog.sdfg, /*functional=*/false);
  dacelite::ExecOptions opt = dacelite::exec_options(recipe);
  opt.functional = false;
  dacelite::execute_persistent(m, w, data, prog.sdfg, opt);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::Args::parse(argc, argv);
  if (args.topo) {
    for (const MachineCfg& m : machines()) {
      bench::print_topology(m.spec, m.name);
    }
    return 0;
  }
  if (args.check) {
    std::vector<bench::CheckCase> cases;
    for (const dacelite::ExpansionChoice e :
         {dacelite::ExpansionChoice::kAuto,
          dacelite::ExpansionChoice::kStridedIputSignal,
          dacelite::ExpansionChoice::kSingleElementP}) {
      cases.push_back({std::string("jacobi2d/expansion=") +
                           std::string(dacelite::name(e)),
                       [e, &args](sim::Observer* o) {
                         check_candidate(e, args, o);
                       }});
    }
    return bench::run_check(cases);
  }

  bench::print_header("Autotune",
                      "recipe search: prototype (analytic) -> validate "
                      "(simulated, verified)");
  bench::print_faults(args.faults);

  std::vector<sweep::RunRecord> all_records;
  struct SummaryRow {
    std::string config;
    double default_us = 0.0;
    double best_us = 0.0;
    std::string best_id = "-";
  };
  std::vector<SummaryRow> summary;

  for (const MachineCfg& m : machines()) {
    for (const tune::Workload& w : workloads()) {
      const std::string config =
          std::string(m.name) + "/" + std::string(tune::name(w.kind));
      std::printf("---- %s ----\n", config.c_str());
      tune::TuneOptions topt;
      topt.top_k = 3;
      topt.max_candidates = args.tune_budget;
      topt.sweep_threads = args.threads;
      topt.pdes_threads = args.pdes_threads;
      topt.progress = args.progress;
      topt.id_prefix = config + "/";
      topt.base_params = {{"machine", m.name},
                          {"system", std::string(tune::name(w.kind))}};
      const tune::TuneReport rep =
          tune::tune(w, args.with_faults(m.spec), topt);
      bench::print_tune_summary(rep);

      SummaryRow row;
      row.config = config;
      row.default_us = sim::to_usec(rep.baseline.measured);
      if (const tune::CandidateResult* best = rep.best()) {
        row.best_us = sim::to_usec(best->measured);
        row.best_id = best->candidate.id();
      }
      summary.push_back(std::move(row));
      all_records.insert(all_records.end(), rep.records.begin(),
                         rep.records.end());
    }
  }

  std::printf("tuned vs default (measured, lower is better)\n");
  std::printf("  %-28s %12s %12s  %s\n", "config", "default[us]", "tuned[us]",
              "tuned recipe");
  for (const SummaryRow& r : summary) {
    std::printf("  %-28s %12.1f %12.1f  %s\n", r.config.c_str(), r.default_us,
                r.best_us, r.best_id.c_str());
  }
  std::printf("\n");

  bench::emit_records("fig_autotune", args, args.threads, all_records);
  return 0;
}
