// Irregular workloads under contention — the exec::Program generalization
// beyond slabs, measured:
//
//   machine model x { histogram: policy triple x skew,
//                     sparse CG: variant x row-partition imbalance }
//
// The generalized histogram's communication is DATA-DEPENDENT: which owners
// a PE talks to each round, and how many bin slots travel, follow from its
// key stream. The skew knob (u -> u^(k+1)) concentrates keys onto the low
// bins, so one owner becomes a contended hot spot — the signaled puts from
// every other PE converge on it. Sparse CG splits matrix rows by a weighted
// partition (rank 0 carries ~`imbalance`x the rows of the last rank): every
// iteration's global reductions must wait for the heavy straggler, and the
// host-orchestrated baseline stacks per-iteration host round-trips on top
// of that wait while the persistent variant feels only the compute skew.
//
// Every functional run is verified BITWISE against its serial reference
// (histogram_reference / sparse_cg_reference); the exit gate is nonzero if
// any run diverges. --check replays small instances of every composition
// under the happens-before race/deadlock detector.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "solvers/sparse_cg.hpp"
#include "workloads/histogram/histogram.hpp"

namespace {

using exec::CommPolicy;
using exec::LaunchPolicy;
using exec::Plan;
using exec::SyncPolicy;

struct MachineDef {
  const char* key;
  vgpu::MachineSpec (*make)();
};

const MachineDef kMachines[] = {
    {"hgx", [] { return vgpu::MachineSpec::hgx_a100(4); }},
    {"dgx_pcie", [] { return vgpu::MachineSpec::dgx_pcie(4); }},
    {"multi_node", [] { return vgpu::MachineSpec::multi_node(2, 2); }},
};

struct PlanDef {
  const char* key;
  Plan plan;
};

/// Every valid policy triple the histogram runs under (same list the
/// irregular test suite sweeps).
const PlanDef kHistPlans[] = {
    {"staged_copy",
     {LaunchPolicy::kHostLoop, CommPolicy::kStagedCopy,
      SyncPolicy::kHostBarrier, "hist"}},
    {"overlap",
     {LaunchPolicy::kHostLoop, CommPolicy::kOverlapStreams,
      SyncPolicy::kHostBarrier, "hist"}},
    {"peer_store",
     {LaunchPolicy::kHostLoop, CommPolicy::kPeerStore,
      SyncPolicy::kHostBarrier, "hist_p2p"}},
    {"signaled_host",
     {LaunchPolicy::kHostLoop, CommPolicy::kSignaledPut,
      SyncPolicy::kStreamSync, "hist_nvshmem"}},
    {"cpu_free",
     {LaunchPolicy::kPersistent, CommPolicy::kSignaledPut,
      SyncPolicy::kIterationFlags, "hist_cpufree"}},
    {"cpu_free_2k",
     {LaunchPolicy::kPersistentPair, CommPolicy::kSignaledPut,
      SyncPolicy::kIterationFlags, "hist_cpufree"}},
};

constexpr int kSkews[] = {0, 2};

struct SparseVariant {
  const char* key;
  Plan plan;
};

const SparseVariant kSparseVariants[] = {
    {"cpu_free",
     {LaunchPolicy::kPersistent, CommPolicy::kSignaledPut,
      SyncPolicy::kIterationFlags, "sparse_cg_cpufree"}},
    {"baseline",
     {LaunchPolicy::kHostLoop, CommPolicy::kStagedCopy,
      SyncPolicy::kHostBarrier, "sparse_cg_baseline"}},
};

constexpr double kImbalances[] = {1.0, 4.0};

workloads::HistogramConfig hist_cfg(int skew) {
  workloads::HistogramConfig cfg;
  // Wide bin space + deep key streams: the hot owner's contended puts and
  // source-ordered merge dominate a round, so skew is visible in the table
  // (small instances are latency-bound and hide it).
  cfg.bins = 2053;  // prime: uneven owner split on every device count
  cfg.keys_per_round = 8192;
  cfg.rounds = 8;
  cfg.skew = skew;
  cfg.threads_per_block = 128;
  return cfg;
}

solvers::SparseCgConfig sparse_cfg(double imbalance) {
  solvers::SparseCgConfig cfg;
  // Wide rows make the per-iteration SpMV nnz-bound, so the weighted row
  // split's straggler shows up against the reduction latency floor.
  cfg.nx = 2048;
  cfg.ny = 128;
  cfg.max_iterations = 40;
  cfg.imbalance = imbalance;
  return cfg;
}

sweep::RunResult run_hist(const vgpu::MachineSpec& spec, int skew,
                          const Plan& plan, sim::Observer* obs = nullptr) {
  workloads::HistogramConfig cfg = hist_cfg(skew);
  cfg.observer = obs;
  sweep::RunResult res;
  res.spec = spec;
  bool completed = false;
  bool verified = false;
  double imbalance = 1.0;
  try {
    const workloads::HistogramResult out =
        workloads::run_histogram(spec, cfg, plan);
    completed = true;
    verified =
        out.bins == workloads::histogram_reference(cfg, spec.num_devices);
    imbalance = out.imbalance;
    res.metrics = out.metrics;
  } catch (const sim::DeadlockError&) {
    // Attributed hang report already published by the engine; the record
    // keeps completed=0.
  }
  res.set("completed", completed ? 1.0 : 0.0);
  res.set("verified", verified ? 1.0 : 0.0);
  res.set("total_ms", res.metrics.total_ms());
  res.set("comm_fraction", res.metrics.comm_fraction);
  bench::tag_workload(res, "histogram", imbalance);
  return res;
}

sweep::RunResult run_sparse(const vgpu::MachineSpec& spec, double imbalance,
                            const Plan& plan, sim::Observer* obs = nullptr) {
  solvers::SparseCgConfig cfg = sparse_cfg(imbalance);
  cfg.observer = obs;
  sweep::RunResult res;
  res.spec = spec;
  bool completed = false;
  bool verified = false;
  int iterations = 0;
  try {
    const solvers::CgResult out = solvers::run_sparse_cg(spec, cfg, plan);
    const solvers::CgResult ref =
        solvers::sparse_cg_reference(cfg, spec.num_devices);
    completed = true;
    verified = out.iterations_run == ref.iterations_run &&
               out.final_rr == ref.final_rr && out.rr_history == ref.rr_history;
    iterations = out.iterations_run;
    res.metrics = out.metrics;
  } catch (const sim::DeadlockError&) {
  }
  res.set("completed", completed ? 1.0 : 0.0);
  res.set("verified", verified ? 1.0 : 0.0);
  res.set("total_ms", res.metrics.total_ms());
  res.set("iterations", iterations);
  bench::tag_workload(
      res, "sparse_cg",
      solvers::sparse_partition_imbalance(cfg, spec.num_devices));
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::Args::parse(argc, argv);
  if (args.topo) {
    for (const MachineDef& m : kMachines) {
      bench::print_topology(m.make(), m.key);
    }
    return 0;
  }
  if (args.check) {
    // Small instances of every composition under the race/deadlock
    // detector: the histogram's data-dependent touched ranges are exactly
    // what the happens-before checker never sees from slab workloads.
    std::vector<bench::CheckCase> cases;
    const vgpu::MachineSpec spec =
        args.with_faults(vgpu::MachineSpec::hgx_a100(2));
    for (const PlanDef& p : kHistPlans) {
      cases.push_back({std::string("histogram/") + p.key,
                       [&p, spec](sim::Observer* o) {
                         workloads::HistogramConfig cfg = hist_cfg(2);
                         cfg.bins = 61;
                         cfg.keys_per_round = 256;
                         cfg.rounds = 3;
                         cfg.persistent_blocks = 8;
                         cfg.observer = o;
                         (void)workloads::run_histogram(spec, cfg, p.plan);
                       }});
    }
    for (const SparseVariant& v : kSparseVariants) {
      cases.push_back({std::string("sparse_cg/") + v.key,
                       [&v, spec](sim::Observer* o) {
                         solvers::SparseCgConfig cfg = sparse_cfg(4.0);
                         cfg.nx = 16;
                         cfg.ny = 16;
                         cfg.max_iterations = 8;
                         cfg.persistent_blocks = 12;
                         cfg.observer = o;
                         (void)solvers::run_sparse_cg(spec, cfg, v.plan);
                       }});
    }
    return bench::run_check(cases);
  }

  bench::print_header("Irregular workloads",
                      "generalized histogram + sparse CG: contention and "
                      "imbalance across machine models");
  bench::print_calibration(vgpu::MachineSpec::hgx_a100(4));
  bench::print_faults(args.faults);
  {
    std::vector<bench::PolicyRow> policies;
    for (const PlanDef& p : kHistPlans) policies.emplace_back(p.key, p.plan);
    for (const SparseVariant& v : kSparseVariants) {
      policies.emplace_back(v.key, v.plan);
    }
    bench::print_policies(policies);
  }

  sweep::Executor ex(args.sweep_options());
  for (const MachineDef& m : kMachines) {
    for (const PlanDef& p : kHistPlans) {
      for (int skew : kSkews) {
        ex.add(std::string(m.key) + "/histogram/" + p.key +
                   "/skew=" + std::to_string(skew),
               {{"machine", m.key},
                {"workload", "histogram"},
                {"plan", p.key},
                {"skew", std::to_string(skew)}},
               [&m, &p, skew, &args] {
                 return run_hist(args.with_faults(m.make()), skew, p.plan);
               });
      }
    }
  }
  for (const MachineDef& m : kMachines) {
    for (const SparseVariant& v : kSparseVariants) {
      for (double imb : kImbalances) {
        ex.add(std::string(m.key) + "/sparse_cg/" + v.key +
                   "/imbalance=" + std::to_string(imb),
               {{"machine", m.key},
                {"workload", "sparse_cg"},
                {"variant", v.key},
                {"imbalance", std::to_string(imb)}},
               [&m, &v, imb, &args] {
                 return run_sparse(args.with_faults(m.make()), imb, v.plan);
               });
      }
    }
  }

  const int threads = ex.resolved_threads();
  const std::vector<sweep::RunRecord> records = ex.run();
  bench::RecordCursor cur(records);

  int broken = 0;
  for (const MachineDef& m : kMachines) {
    std::printf("%s — histogram total [ms] (policy x skew)\n", m.key);
    std::printf("  %-16s", "plan");
    for (int skew : kSkews) std::printf("  %10s%d", "skew ", skew);
    std::printf("  %12s\n", "imbalance");
    for (const PlanDef& p : kHistPlans) {
      std::printf("  %-16s", p.key);
      double imb = 1.0;
      for (std::size_t s = 0; s < std::size(kSkews); ++s) {
        const sweep::RunRecord& rec = cur.next();
        if (rec.value("completed") == 0.0 || rec.value("verified") == 0.0) {
          ++broken;
        }
        std::printf("  %11.2f", rec.value("total_ms"));
        imb = rec.out.partition_imbalance;  // skewed column's realized factor
      }
      std::printf("  %12.2f\n", imb);
    }
    std::printf("\n");
  }
  std::printf(
      "(histogram totals are skew-invariant BY DESIGN: owner-partitioned\n"
      " pre-aggregation absorbs the hot owner's update concentration — the\n"
      " imbalance column — that a direct atomic-update scheme would pay on\n"
      " the wire; the policy axis, not the skew axis, moves the total.)\n\n");
  for (const MachineDef& m : kMachines) {
    std::printf("%s — sparse CG total [ms] (variant x row imbalance)\n",
                m.key);
    std::printf("  %-16s", "variant");
    for (double imb : kImbalances) std::printf("  %8s%.0f", "ratio ", imb);
    std::printf("\n");
    for (const SparseVariant& v : kSparseVariants) {
      std::printf("  %-16s", v.key);
      for (std::size_t i = 0; i < std::size(kImbalances); ++i) {
        const sweep::RunRecord& rec = cur.next();
        if (rec.value("completed") == 0.0 || rec.value("verified") == 0.0) {
          ++broken;
        }
        std::printf("  %9.2f", rec.value("total_ms"));
      }
      std::printf("\n");
    }
    std::printf("\n");
  }

  std::printf("%s: %d run(s) failed bitwise verification\n\n",
              broken == 0 ? "EXACT" : "BROKEN", broken);
  bench::emit_records("fig_irregular", args, threads, records);
  return broken == 0 ? 0 : 1;
}
