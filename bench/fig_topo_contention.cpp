// Topology contention study — the same weak-scaled 2D Jacobi, all seven code
// variants, on three 8-GPU machines that differ only in their interconnect:
//
//   * hgx_a100   — NVSwitch crossbar: a dedicated FIFO lane per ordered pair
//                  (the calibration machine; matches the flat cost model).
//   * dgx_pcie   — PCIe tree, no NVLink: peer traffic, cross-group traffic
//                  and host staging all share the tree's links.
//   * multi_node — 2 nodes x 4 GPUs: NVSwitch inside a node, shared NIC
//                  injection + network links between nodes.
//
// The figure reports per-iteration time per (variant, topology) and each
// variant's slowdown vs the crossbar, showing which compositions are
// bandwidth-bound enough for link sharing to matter and which hide it.
#include <cstdio>
#include <iterator>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "stencil/problems.hpp"
#include "stencil/runner.hpp"
#include "stencil/variants.hpp"

namespace {

using stencil::Jacobi2D;
using stencil::StencilConfig;
using stencil::Variant;

std::vector<Variant> all_variants() {
  std::vector<Variant> v(std::begin(stencil::kAllVariants),
                         std::end(stencil::kAllVariants));
  v.push_back(Variant::kCpuFreeTwoKernels);
  return v;
}

struct TopoClass {
  const char* name;  // human-readable table caption
  const char* key;   // JSON parameter value
  vgpu::MachineSpec sweep_spec;  // the 8-device evaluation machine
  vgpu::MachineSpec check_spec;  // a 2-device instance for --check
};

std::vector<TopoClass> topo_classes() {
  return {
      {"HGX A100 (NVSwitch crossbar)", "hgx_a100",
       vgpu::MachineSpec::hgx_a100(8), vgpu::MachineSpec::hgx_a100(2)},
      {"DGX PCIe tree (no NVLink)", "dgx_pcie", vgpu::MachineSpec::dgx_pcie(8),
       vgpu::MachineSpec::dgx_pcie(2)},
      {"2 nodes x 4 GPUs (NIC + network)", "multi_node",
       vgpu::MachineSpec::multi_node(2, 4), vgpu::MachineSpec::multi_node(2, 1)},
  };
}

/// The medium domain of Figure 6.1 weak-scaled to 8 GPUs; large enough for
/// halo traffic to be a visible fraction of an iteration.
Jacobi2D sweep_problem() {
  Jacobi2D p;
  p.nx = 4096;
  p.ny = 4096;
  return p;
}

constexpr int kSweepIters = 30;

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::Args::parse(argc, argv);
  std::vector<TopoClass> topos = topo_classes();
  for (TopoClass& tc : topos) {
    tc.sweep_spec = args.with_faults(tc.sweep_spec);
    tc.check_spec = args.with_faults(tc.check_spec);
  }
  const std::vector<Variant> variants = all_variants();

  if (args.topo) {
    for (const TopoClass& tc : topos) {
      bench::print_topology(tc.sweep_spec, tc.key);
    }
    return 0;
  }
  if (args.check) {
    // Every variant on every topology class (2-device instances): the
    // synchronization protocols must stay race- and deadlock-free no matter
    // which wires carry the puts.
    std::vector<bench::CheckCase> cases;
    for (const TopoClass& tc : topos) {
      for (Variant v : variants) {
        cases.push_back({std::string(tc.key) + "/" +
                             std::string(stencil::variant_name(v)),
                         [spec = tc.check_spec, v](sim::Observer* obs) {
                           StencilConfig cfg;
                           cfg.iterations = 8;
                           cfg.persistent_blocks = 12;
                           cfg.observer = obs;
                           Jacobi2D p;
                           p.nx = 64;
                           p.ny = 128;
                           (void)stencil::run_jacobi2d(v, spec, p, cfg);
                         }});
      }
    }
    return bench::run_check(cases);
  }

  bench::print_header("Topology contention",
                      "2D Jacobi, 7 variants x 3 interconnects, 8 GPUs");
  bench::print_calibration(vgpu::MachineSpec::hgx_a100(8));
  bench::print_faults(args.faults);
  {
    std::vector<bench::PolicyRow> policies;
    for (Variant v : variants) {
      policies.emplace_back(stencil::variant_name(v), stencil::plan_for(v));
    }
    bench::print_policies(policies);
  }

  sweep::Executor ex(args.sweep_options());
  for (const TopoClass& tc : topos) {
    for (Variant v : variants) {
      ex.add(std::string(tc.key) + "/" + std::string(stencil::variant_name(v)),
             {{"topology", tc.key},
              {"variant", std::string(stencil::variant_name(v))},
              {"gpus", "8"}},
             [spec = tc.sweep_spec, v, repeats = args.repeats] {
               StencilConfig cfg;
               cfg.iterations = kSweepIters;
               cfg.functional = false;
               sweep::RunResult res;
               res.spec = spec;
               sim::RunStats stats;
               for (int rep = 0; rep < repeats; ++rep) {
                 const auto out =
                     stencil::run_jacobi2d(v, spec, sweep_problem(), cfg);
                 stats.add(out.result.metrics.per_iteration_us());
                 res.metrics = out.result.metrics;
               }
               res.set("per_iter_us", stats.min());
               bench::tag_workload(
                   res, "jacobi2d",
                   bench::slab_imbalance(sweep_problem().ny, spec.num_devices));
               return res;
             });
    }
  }

  const int threads = ex.resolved_threads();
  const std::vector<sweep::RunRecord> records = ex.run();
  bench::RecordCursor cur(records);

  // vals[topology][variant]
  std::vector<std::vector<double>> vals;
  for (std::size_t t = 0; t < topos.size(); ++t) {
    std::vector<double> row;
    for (std::size_t i = 0; i < variants.size(); ++i) {
      row.push_back(cur.next().value("per_iter_us"));
    }
    vals.push_back(std::move(row));
  }

  std::printf("per-iteration time by interconnect [us/iter]\n");
  std::printf("  %-24s", "variant");
  for (const TopoClass& tc : topos) std::printf("  %14s", tc.key);
  std::printf("\n");
  for (std::size_t i = 0; i < variants.size(); ++i) {
    const std::string label{stencil::variant_name(variants[i])};
    std::printf("  %-24s", label.c_str());
    for (std::size_t t = 0; t < topos.size(); ++t) {
      std::printf("  %14.2f", vals[t][i]);
    }
    std::printf("\n");
  }
  std::printf("\n");

  std::printf("slowdown vs %s:\n", topos[0].key);
  for (std::size_t i = 0; i < variants.size(); ++i) {
    const std::string label{stencil::variant_name(variants[i])};
    std::printf("  %-24s", label.c_str());
    for (std::size_t t = 1; t < topos.size(); ++t) {
      std::printf("  %s %+6.1f%%", topos[t].key,
                  (vals[t][i] / vals[0][i] - 1.0) * 100.0);
    }
    std::printf("\n");
  }
  std::printf("\n");

  bench::emit_records("fig_topo_contention", args, threads, records);
  return 0;
}
