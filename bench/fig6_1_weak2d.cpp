// Figure 6.1 — weak scaling of the 2D Jacobi stencil, small / medium / large
// domains (256^2, 2048^2, 8192^2 base), 1-8 A100s, all six code variants.
//
// Shape targets from the paper (at 8 GPUs):
//   * small/medium: CPU-Free ~40-50% faster than the best baseline
//     (Baseline NVSHMEM) and ~95%+ faster than Baseline Copy/Overlap;
//   * large: plain CPU-Free LOSES to the baselines (software tiling,
//     §4.1.4/§6.1.2) while CPU-Free PERKS wins (~19% in the paper) and weak-
//     scales within a few percent.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "stencil/problems.hpp"
#include "stencil/runner.hpp"
#include "stencil/variants.hpp"

namespace {

using stencil::Jacobi2D;
using stencil::StencilConfig;
using stencil::Variant;

Jacobi2D weak_scaled(std::size_t base, int gpus) {
  Jacobi2D p;
  p.nx = base;
  p.ny = base;
  int g = gpus;
  bool axis = false;
  while (g > 1) {
    if (axis) {
      p.nx *= 2;
    } else {
      p.ny *= 2;
    }
    axis = !axis;
    g /= 2;
  }
  return p;
}

struct DomainClass {
  const char* name;
  const char* key;
  std::size_t base;
  int iters;
};

constexpr DomainClass kClasses[] = {
    {"small (256^2)", "small", 256, 200},
    {"medium (2048^2)", "medium", 2048, 50},
    {"large (8192^2)", "large", 8192, 10},
};

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::Args::parse(argc, argv);
  if (args.topo) {
    bench::print_topology(vgpu::MachineSpec::hgx_a100(8), "hgx_a100(8)");
    return 0;
  }
  if (args.check) {
    // Every stencil variant (including the §4 two-kernel design) on a small
    // functional instance, under the race/deadlock checker.
    std::vector<bench::CheckCase> cases;
    std::vector<Variant> variants;
    for (Variant v : stencil::kAllVariants) variants.push_back(v);
    variants.push_back(Variant::kCpuFreeTwoKernels);
    for (Variant v : variants) {
      cases.push_back({std::string(stencil::variant_name(v)),
                       [v, &args](sim::Observer* obs) {
                         StencilConfig cfg;
                         cfg.iterations = 8;
                         cfg.persistent_blocks = 12;
                         cfg.observer = obs;
                         (void)stencil::run_jacobi2d(
                             v, args.with_faults(vgpu::MachineSpec::hgx_a100(2)),
                             weak_scaled(64, 2), cfg);
                       }});
    }
    return bench::run_check(cases);
  }
  bench::print_header("Figure 6.1", "2D Jacobi weak scaling, 6 variants");
  bench::print_calibration(vgpu::MachineSpec::hgx_a100(8));
  bench::print_faults(args.faults);

  const std::vector<int> gpus = {1, 2, 4, 8};

  {
    std::vector<bench::PolicyRow> policies;
    for (Variant v : stencil::kAllVariants) {
      policies.emplace_back(stencil::variant_name(v), stencil::plan_for(v));
    }
    bench::print_policies(policies);
  }

  sweep::Executor ex(args.sweep_options());
  for (const DomainClass& dc : kClasses) {
    for (Variant v : stencil::kAllVariants) {
      for (int g : gpus) {
        ex.add(std::string(dc.key) + "/" +
                   std::string(stencil::variant_name(v)) +
                   "/gpus=" + std::to_string(g),
               {{"domain", dc.key},
                {"variant", std::string(stencil::variant_name(v))},
                {"gpus", std::to_string(g)}},
               [dc, v, g, repeats = args.repeats, &args] {
                 StencilConfig cfg;
                 cfg.iterations = dc.iters;
                 cfg.functional = false;
                 const vgpu::MachineSpec spec =
                     args.with_faults(vgpu::MachineSpec::hgx_a100(g));
                 sweep::RunResult res;
                 res.spec = spec;
                 sim::RunStats stats;
                 for (int rep = 0; rep < repeats; ++rep) {
                   const auto out = stencil::run_jacobi2d(
                       v, spec, weak_scaled(dc.base, g), cfg);
                   stats.add(out.result.metrics.per_iteration_us());
                   res.metrics = out.result.metrics;
                 }
                 res.set("per_iter_us", stats.min());
                 bench::tag_workload(
                     res, "jacobi2d",
                     bench::slab_imbalance(weak_scaled(dc.base, g).ny, g));
                 return res;
               });
      }
    }
  }

  const int threads = ex.resolved_threads();
  const std::vector<sweep::RunRecord> records = ex.run();
  bench::RecordCursor cur(records);

  for (const DomainClass& dc : kClasses) {
    std::vector<bench::Row> rows;
    for (Variant v : stencil::kAllVariants) {
      bench::Row r{std::string(stencil::variant_name(v)), {}};
      for (std::size_t i = 0; i < gpus.size(); ++i) {
        r.values.push_back(cur.next().value("per_iter_us"));
      }
      rows.push_back(std::move(r));
    }
    bench::print_table(std::string("per-iteration time, ") + dc.name, gpus,
                       rows, "us/iter");

    // Paper-style speedup summaries at 8 GPUs.
    auto value_of = [&rows](Variant v, std::size_t idx) {
      return rows[static_cast<std::size_t>(v)].values[idx];
    };
    const std::size_t at8 = gpus.size() - 1;
    const double best_baseline =
        std::min({value_of(Variant::kBaselineCopy, at8),
                  value_of(Variant::kBaselineOverlap, at8),
                  value_of(Variant::kBaselineP2P, at8),
                  value_of(Variant::kBaselineNvshmem, at8)});
    std::printf("  at 8 GPUs: CPU-Free vs best baseline: %+6.1f%%   "
                "vs Baseline Copy: %+6.1f%%   PERKS vs best baseline: %+6.1f%%\n",
                sim::speedup_percent(best_baseline,
                                     value_of(Variant::kCpuFree, at8)),
                sim::speedup_percent(value_of(Variant::kBaselineCopy, at8),
                                     value_of(Variant::kCpuFree, at8)),
                sim::speedup_percent(best_baseline,
                                     value_of(Variant::kCpuFreePerks, at8)));
    // Weak-scaling efficiency of PERKS (paper: <= ~9% dropoff at 8 GPUs on
    // the largest domain).
    const double perks1 = rows[5].values[0];
    const double perks8 = rows[5].values[at8];
    std::printf("  CPU-Free PERKS weak-scaling dropoff 1->8 GPUs: %.1f%%\n\n",
                (perks8 / perks1 - 1.0) * 100.0);
  }

  bench::emit_records("fig6_1_weak2d", args, threads, records);
  return 0;
}
