// Figure 2.2 — (a) pure communication + synchronization overheads with no
// computation; (b) communication overlap ratio % and total execution time.
//
// Small 2D domain (256^2 base, weak-scaled), CPU-controlled baseline versus
// CPU-Free. The paper's headline observations to reproduce in shape:
//   * with no computation, the baseline's per-iteration overhead is several
//     times the CPU-Free one (host API latencies dominate);
//   * with computation, the baseline overlaps only a small fraction of its
//     communication while CPU-Free hides almost all of it, and communication
//     takes the vast majority of the baseline's execution time.
//
// Also dumps a Chrome-trace timeline (--trace [path]) — the stand-in for the
// paper's Nsight screenshots (Fig. 2.1b).
#include <cstdio>
#include <fstream>

#include "bench_common.hpp"
#include "stencil/problems.hpp"
#include "stencil/runner.hpp"
#include "stencil/slab.hpp"
#include "stencil/variants.hpp"
#include "vshmem/world.hpp"

namespace {

using stencil::Jacobi2D;
using stencil::StencilConfig;
using stencil::Variant;

Jacobi2D weak_scaled(std::size_t base, int gpus) {
  // Double alternating axes as devices double (§6.1.2).
  Jacobi2D p;
  p.nx = base;
  p.ny = base;
  int g = gpus;
  bool axis = false;  // start by growing ny (the partitioned axis)
  while (g > 1) {
    if (axis) {
      p.nx *= 2;
    } else {
      p.ny *= 2;
    }
    axis = !axis;
    g /= 2;
  }
  return p;
}

std::vector<sweep::Param> params(const char* part, Variant v, int g) {
  return {{"part", part},
          {"variant", std::string(stencil::variant_name(v))},
          {"gpus", std::to_string(g)}};
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::Args::parse(argc, argv);
  if (args.topo) {
    bench::print_topology(vgpu::MachineSpec::hgx_a100(8), "hgx_a100(8)");
    return 0;
  }
  if (args.check) {
    // Both parts of the figure: the no-compute communication skeleton and
    // the computing run, per variant, on a small 2-GPU instance.
    std::vector<bench::CheckCase> cases;
    for (const bool compute : {false, true}) {
      for (Variant v : {Variant::kBaselineCopy, Variant::kBaselineOverlap,
                        Variant::kBaselineP2P, Variant::kBaselineNvshmem,
                        Variant::kCpuFree}) {
        cases.push_back({std::string(stencil::variant_name(v)) +
                             (compute ? "/compute" : "/no_compute"),
                         [v, compute, &args](sim::Observer* obs) {
                           StencilConfig cfg;
                           cfg.iterations = 8;
                           cfg.compute_enabled = compute;
                           cfg.functional = compute;
                           cfg.persistent_blocks = 12;
                           cfg.observer = obs;
                           (void)stencil::run_jacobi2d(
                               v,
                               args.with_faults(vgpu::MachineSpec::hgx_a100(2)),
                               weak_scaled(64, 2), cfg);
                         }});
      }
    }
    return bench::run_check(cases);
  }
  bench::print_header("Figure 2.2",
                      "communication overheads and overlap, small 2D domain");
  bench::print_calibration(vgpu::MachineSpec::hgx_a100(8));
  bench::print_faults(args.faults);

  const std::vector<int> gpus = {2, 4, 8};
  constexpr int kIters = 200;
  constexpr Variant kNoComputeVariants[] = {
      Variant::kBaselineCopy, Variant::kBaselineOverlap, Variant::kBaselineP2P,
      Variant::kBaselineNvshmem, Variant::kCpuFree};
  constexpr Variant kComputeVariants[] = {
      Variant::kBaselineCopy, Variant::kBaselineOverlap, Variant::kCpuFree};

  {
    std::vector<bench::PolicyRow> policies;
    for (Variant v : kNoComputeVariants) {
      policies.emplace_back(stencil::variant_name(v), stencil::plan_for(v));
    }
    bench::print_policies(policies);
  }

  sweep::Executor ex(args.sweep_options());

  // (a) No-compute: per-iteration communication+synchronization time.
  for (Variant v : kNoComputeVariants) {
    for (int g : gpus) {
      ex.add(std::string("a/") + std::string(stencil::variant_name(v)) +
                 "/gpus=" + std::to_string(g),
             params("a", v, g), [v, g, repeats = args.repeats, &args] {
               StencilConfig cfg;
               cfg.iterations = kIters;
               cfg.functional = false;
               cfg.compute_enabled = false;
               const vgpu::MachineSpec spec =
                   args.with_faults(vgpu::MachineSpec::hgx_a100(g));
               sweep::RunResult res;
               res.spec = spec;
               sim::RunStats stats;
               for (int rep = 0; rep < repeats; ++rep) {
                 const auto out =
                     stencil::run_jacobi2d(v, spec, weak_scaled(256, g), cfg);
                 stats.add(out.result.metrics.per_iteration_us());
                 res.metrics = out.result.metrics;
               }
               res.set("per_iter_us", stats.min());
               bench::tag_workload(
                   res, "jacobi2d",
                   bench::slab_imbalance(weak_scaled(256, g).ny, g));
               return res;
             });
    }
  }

  // (b) With compute: total time and overlap ratio. A 1024^2 base keeps the
  // domain small (latency-sensitive) while leaving computation to hide
  // communication under.
  for (Variant v : kComputeVariants) {
    for (int g : gpus) {
      ex.add(std::string("b/") + std::string(stencil::variant_name(v)) +
                 "/gpus=" + std::to_string(g),
             params("b", v, g), [v, g, &args] {
               StencilConfig cfg;
               cfg.iterations = kIters;
               cfg.functional = false;
               const vgpu::MachineSpec spec =
                   args.with_faults(vgpu::MachineSpec::hgx_a100(g));
               const auto out =
                   stencil::run_jacobi2d(v, spec, weak_scaled(1024, g), cfg);
               sweep::RunResult res;
               res.spec = spec;
               res.metrics = out.result.metrics;
               res.set("total_ms", out.result.metrics.total_ms());
               res.set("overlap_pct",
                       out.result.metrics.hidden_comm_ratio * 100.0);
               res.set("noncompute_pct",
                       out.result.metrics.noncompute_fraction * 100.0);
               bench::tag_workload(
                   res, "jacobi2d",
                   bench::slab_imbalance(weak_scaled(1024, g).ny, g));
               return res;
             });
    }
  }

  const int threads = ex.resolved_threads();
  const std::vector<sweep::RunRecord> records = ex.run();
  bench::RecordCursor cur(records);

  {
    std::vector<bench::Row> rows;
    for (Variant v : kNoComputeVariants) {
      bench::Row r{std::string(stencil::variant_name(v)), {}};
      for (std::size_t i = 0; i < gpus.size(); ++i) {
        r.values.push_back(cur.next().value("per_iter_us"));
      }
      rows.push_back(std::move(r));
    }
    bench::print_table(
        "(a) pure communication overhead per iteration (no compute)", gpus,
        rows, "us/iter");
  }

  {
    std::vector<bench::Row> total_rows;
    std::vector<bench::Row> overlap_rows;
    std::vector<bench::Row> commfrac_rows;
    for (Variant v : kComputeVariants) {
      bench::Row rt{std::string(stencil::variant_name(v)), {}};
      bench::Row ro = rt;
      bench::Row rc = rt;
      for (std::size_t i = 0; i < gpus.size(); ++i) {
        const sweep::RunRecord& rec = cur.next();
        rt.values.push_back(rec.value("total_ms"));
        ro.values.push_back(rec.value("overlap_pct"));
        rc.values.push_back(rec.value("noncompute_pct"));
      }
      total_rows.push_back(std::move(rt));
      overlap_rows.push_back(std::move(ro));
      commfrac_rows.push_back(std::move(rc));
    }
    bench::print_table("(b) total execution time", gpus, total_rows, "ms");
    bench::print_table("(b) communication overlapped with computation", gpus,
                       overlap_rows, "%");
    bench::print_table("(b) non-compute (communication) share of runtime",
                       gpus, commfrac_rows, "%");
  }

  bench::emit_records("fig2_2_overhead", args, threads, records);

  if (args.trace_dump) {
    StencilConfig cfg;
    cfg.iterations = 5;
    cfg.functional = false;
    vgpu::Machine machine(args.with_faults(vgpu::MachineSpec::hgx_a100(4)));
    vshmem::World world(machine);
    stencil::SlabStencil<Jacobi2D> s(world, weak_scaled(256, 4), cfg);
    stencil::run_variant(s, Variant::kBaselineOverlap);
    std::ofstream f(args.trace_path);
    f << machine.trace().to_chrome_json();
    std::printf("timeline written to %s (open in chrome://tracing)\n",
                args.trace_path.c_str());
  }
  return 0;
}
