// Fault-resilience study — the deterministic fault plane (src/fault/)
// exercised across the resilience ladder:
//
//   fault rate x { CPU-Free stencil (1- and 2-kernel), CPU-Free CG }
//              x { no-retry, retry, retry+degrade }
//
// Every case runs FUNCTIONALLY and is verified against the serial
// reference, so "recovered" means the numerics are bit-identical, not
// merely that the run finished. Expected shape: with faults on,
//   * no-retry hangs on the first lost signal (the engine's attributed
//     deadlock report names the stuck actor and wait site);
//   * retry completes while the loss stays within the retry budget;
//   * retry+degrade completes every case, falling back to host-style
//     polling when the budget is exhausted.
//
// --faults seed=S picks the injection seed (rate/resilience from the
// command line are ignored: this driver sweeps them itself). The final
// RESILIENT/FRAGILE line gates the CI fault-soak: exit is nonzero iff a
// recovering configuration failed to complete with correct numerics.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "solvers/cg.hpp"
#include "stencil/problems.hpp"
#include "stencil/runner.hpp"
#include "stencil/variants.hpp"

namespace {

using stencil::StencilConfig;
using stencil::Variant;

constexpr double kRates[] = {0.0, 0.01, 0.05};
constexpr fault::Resilience kModes[] = {fault::Resilience::kNone,
                                        fault::Resilience::kRetry,
                                        fault::Resilience::kRetryDegrade};
constexpr int kGpus = 4;
constexpr int kStencilIters = 30;

struct Workload {
  const char* key;                 // JSON parameter value / table caption
  bool is_cg;
  Variant variant;                 // stencil workloads only
};

const Workload kWorkloads[] = {
    {"stencil/cpu_free", false, Variant::kCpuFree},
    {"stencil/cpu_free_2k", false, Variant::kCpuFreeTwoKernels},
    {"cg/cpu_free", true, Variant::kCpuFree},
};

fault::Config make_faults(std::uint64_t seed, double rate,
                          fault::Resilience mode) {
  fault::Config cfg;
  cfg.seed = seed;
  cfg.rate = rate;
  cfg.resilience = mode;
  return cfg;
}

/// One case end to end. A deadlock (expected for no-retry at nonzero rate)
/// is caught and reported as completed=0; everything else must verify.
int g_pdes_threads = 1;

sweep::RunResult run_case(const Workload& w, const fault::Config& faults,
                          sim::Observer* obs = nullptr) {
  vgpu::MachineSpec spec = vgpu::MachineSpec::hgx_a100(kGpus);
  spec.faults = faults;
  spec.pdes_threads = g_pdes_threads;
  sweep::RunResult res;
  res.spec = spec;
  bool completed = false;
  bool verified = false;
  try {
    if (w.is_cg) {
      solvers::CgConfig cfg;
      cfg.nx = 96;
      cfg.ny = 96;
      cfg.max_iterations = 40;
      cfg.functional = true;
      cfg.observer = obs;
      const solvers::CgResult out = solvers::run_cg_cpufree(spec, cfg);
      const solvers::CgResult ref = solvers::cg_reference(cfg, kGpus);
      completed = true;
      verified = out.iterations_run == ref.iterations_run &&
                 out.final_rr == ref.final_rr;
      res.metrics = out.metrics;
    } else {
      stencil::Jacobi2D p;
      p.nx = 256;
      p.ny = 256;
      StencilConfig cfg;
      cfg.iterations = kStencilIters;
      cfg.functional = true;
      cfg.persistent_blocks = 12;
      cfg.observer = obs;
      const stencil::RunOutput out = stencil::run_jacobi2d(w.variant, spec, p, cfg);
      completed = true;
      verified = out.verified;
      res.metrics = out.result.metrics;
    }
  } catch (const sim::DeadlockError&) {
    // The engine already printed/threw an attributed report; for the sweep
    // this outcome is simply "did not complete".
  }
  res.set("completed", completed ? 1.0 : 0.0);
  res.set("verified", verified ? 1.0 : 0.0);
  res.set("total_ms", res.metrics.total_ms());
  res.set("retries", static_cast<double>(res.metrics.retries));
  res.set("watchdog_fires", static_cast<double>(res.metrics.watchdog_fires));
  res.set("degraded_iters", static_cast<double>(res.metrics.degraded_iters));
  res.set("faults_injected",
          static_cast<double>(res.metrics.faults_injected));
  bench::tag_workload(res, w.is_cg ? "cg" : "jacobi2d",
                      bench::slab_imbalance(w.is_cg ? 96 : 256, kGpus));
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::Args::parse(argc, argv);
  if (args.topo) {
    bench::print_topology(vgpu::MachineSpec::hgx_a100(kGpus),
                          "hgx_a100(4)");
    return 0;
  }
  g_pdes_threads = args.pdes_threads;
  const std::uint64_t seed = args.faults.seed;
  if (args.check) {
    // Recovering configurations only: a no-retry case at nonzero rate hangs
    // by design (its verdict would be the engine's deadlock report, not a
    // protocol bug), so the race/deadlock gate covers retry and degrade.
    std::vector<bench::CheckCase> cases;
    for (const Workload& w : kWorkloads) {
      for (fault::Resilience mode :
           {fault::Resilience::kRetry, fault::Resilience::kRetryDegrade}) {
        cases.push_back({std::string(w.key) + "/" + fault::name(mode),
                         [&w, mode, seed](sim::Observer* o) {
                           (void)run_case(w, make_faults(seed, 0.05, mode), o);
                         }});
      }
    }
    return bench::run_check(cases);
  }

  bench::print_header("Fault resilience",
                      "injection rate x workload x resilience ladder");
  bench::print_calibration(vgpu::MachineSpec::hgx_a100(kGpus));
  std::printf("injection seed %llu (override with --faults seed=S)\n\n",
              static_cast<unsigned long long>(seed));
  bench::print_policies(
      {{stencil::variant_name(Variant::kCpuFree),
        stencil::plan_for(Variant::kCpuFree)},
       {stencil::variant_name(Variant::kCpuFreeTwoKernels),
        stencil::plan_for(Variant::kCpuFreeTwoKernels)}});

  sweep::Executor ex(args.sweep_options());
  for (const Workload& w : kWorkloads) {
    for (double rate : kRates) {
      for (fault::Resilience mode : kModes) {
        ex.add(std::string(w.key) + "/rate=" + std::to_string(rate) + "/" +
                   fault::name(mode),
               {{"workload", w.key},
                {"rate", std::to_string(rate)},
                {"resilience", fault::name(mode)},
                {"seed", std::to_string(seed)},
                {"gpus", std::to_string(kGpus)}},
               [&w, rate, mode, seed] {
                 return run_case(w, make_faults(seed, rate, mode));
               });
      }
    }
  }

  const int threads = ex.resolved_threads();
  const std::vector<sweep::RunRecord> records = ex.run();
  bench::RecordCursor cur(records);

  int fragile = 0;  // recovering configurations that failed
  for (const Workload& w : kWorkloads) {
    std::printf("%s\n", w.key);
    std::printf("  %-16s", "resilience");
    for (double rate : kRates) std::printf("  %16s", ("rate " + std::to_string(rate)).c_str());
    std::printf("\n");
    // records are queued rate-major, printed mode-major: buffer the grid.
    const sweep::RunRecord* grid[std::size(kRates)][std::size(kModes)];
    for (std::size_t r = 0; r < std::size(kRates); ++r) {
      for (std::size_t m = 0; m < std::size(kModes); ++m) {
        grid[r][m] = &cur.next();
      }
    }
    for (std::size_t m = 0; m < std::size(kModes); ++m) {
      std::printf("  %-16s", fault::name(kModes[m]));
      for (std::size_t r = 0; r < std::size(kRates); ++r) {
        const sweep::RunRecord& rec = *grid[r][m];
        const bool completed = rec.value("completed") != 0.0;
        const bool verified = rec.value("verified") != 0.0;
        char cell[64];
        if (!completed) {
          std::snprintf(cell, sizeof(cell), "HUNG");
        } else {
          std::snprintf(cell, sizeof(cell), "%s %.2f ms",
                        verified ? "ok" : "WRONG", rec.value("total_ms"));
        }
        std::printf("  %16s", cell);
        if (kModes[m] != fault::Resilience::kNone && !(completed && verified)) {
          ++fragile;
        }
      }
      std::printf("\n");
    }
    // Recovery-protocol activity at the highest rate, per rung.
    for (std::size_t m = 1; m < std::size(kModes); ++m) {
      const sweep::RunRecord& rec = *grid[std::size(kRates) - 1][m];
      std::printf("  %-16s at rate %g: %d injected, %d watchdog, %d retries,"
                  " %d degraded wait(s)\n",
                  fault::name(kModes[m]), kRates[std::size(kRates) - 1],
                  static_cast<int>(rec.value("faults_injected")),
                  static_cast<int>(rec.value("watchdog_fires")),
                  static_cast<int>(rec.value("retries")),
                  static_cast<int>(rec.value("degraded_iters")));
    }
    std::printf("\n");
  }

  std::printf("%s: %d recovering configuration(s) failed\n\n",
              fragile == 0 ? "RESILIENT" : "FRAGILE", fragile);

  bench::emit_records("fig_fault_resilience", args, threads, records);
  return fragile == 0 ? 0 : 1;
}
