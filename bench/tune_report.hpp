// Shared console rendering of a tune::TuneReport for the bench drivers
// (fig6_3_dace --tune and fig_autotune).
#pragma once

#include <cstdio>
#include <string>

#include "sim/time.hpp"
#include "tune/tuner.hpp"

namespace bench {

/// Prints the default recipe plus every validated top-K candidate with
/// predicted vs measured time and its validation status. Returns true when a
/// validated, verified, check-clean candidate measured strictly faster than
/// the (validated) default.
inline bool print_tune_summary(const tune::TuneReport& rep) {
  std::printf("workload: %s   space: %zu candidate(s)\n",
              rep.workload.label().c_str(), rep.space_size);
  std::printf("  %-44s %13s %13s  %s\n", "candidate", "predicted[us]",
              "measured[us]", "status");
  auto line = [](const std::string& label, const tune::CandidateResult& r) {
    std::string status = "scored";
    if (r.validated) {
      status = r.verified ? "verified" : "UNVERIFIED";
      status += r.check_clean ? ",clean" : ",DIRTY";
      if (!r.put_expansion.empty()) {
        status += " put=" + r.put_expansion;
        status += " blocks=" + std::to_string(r.persistent_blocks);
      }
    }
    std::printf("  %-44s %13.1f %13.1f  %s\n", label.c_str(),
                sim::to_usec(r.predicted),
                r.validated ? sim::to_usec(r.measured) : 0.0, status.c_str());
  };
  line("default [" + rep.baseline.candidate.id() + "]", rep.baseline);
  for (const tune::CandidateResult& r : rep.ranked) {
    if (!r.validated) break;  // ranked is sorted; only the top-K validated
    line(r.candidate.id(), r);
  }

  const tune::CandidateResult* best = rep.best();
  const bool improved = best != nullptr && rep.baseline.validated &&
                        rep.baseline.verified &&
                        best->measured < rep.baseline.measured;
  if (improved) {
    std::printf(
        "  winner: %s  (%.1f us vs default %.1f us, %+.1f%%)\n"
        "  recipe: %s\n\n",
        best->candidate.id().c_str(), sim::to_usec(best->measured),
        sim::to_usec(rep.baseline.measured),
        (sim::to_usec(best->measured) / sim::to_usec(rep.baseline.measured) -
         1.0) *
            100.0,
        best->candidate.recipe.serialize().c_str());
  } else {
    std::printf("  no validated candidate beat the default recipe\n\n");
  }
  return improved;
}

}  // namespace bench
