# Empty dependencies file for vshmem.
# This may be replaced when dependencies are built.
