file(REMOVE_RECURSE
  "CMakeFiles/vshmem.dir/world.cpp.o"
  "CMakeFiles/vshmem.dir/world.cpp.o.d"
  "libvshmem.a"
  "libvshmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vshmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
