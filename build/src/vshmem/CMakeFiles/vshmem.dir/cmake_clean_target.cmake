file(REMOVE_RECURSE
  "libvshmem.a"
)
