# Empty compiler generated dependencies file for solvers.
# This may be replaced when dependencies are built.
