file(REMOVE_RECURSE
  "CMakeFiles/solvers.dir/cg.cpp.o"
  "CMakeFiles/solvers.dir/cg.cpp.o.d"
  "libsolvers.a"
  "libsolvers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solvers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
