file(REMOVE_RECURSE
  "libsolvers.a"
)
