
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vgpu/host.cpp" "src/vgpu/CMakeFiles/vgpu.dir/host.cpp.o" "gcc" "src/vgpu/CMakeFiles/vgpu.dir/host.cpp.o.d"
  "/root/repo/src/vgpu/kernel.cpp" "src/vgpu/CMakeFiles/vgpu.dir/kernel.cpp.o" "gcc" "src/vgpu/CMakeFiles/vgpu.dir/kernel.cpp.o.d"
  "/root/repo/src/vgpu/machine.cpp" "src/vgpu/CMakeFiles/vgpu.dir/machine.cpp.o" "gcc" "src/vgpu/CMakeFiles/vgpu.dir/machine.cpp.o.d"
  "/root/repo/src/vgpu/stream.cpp" "src/vgpu/CMakeFiles/vgpu.dir/stream.cpp.o" "gcc" "src/vgpu/CMakeFiles/vgpu.dir/stream.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
