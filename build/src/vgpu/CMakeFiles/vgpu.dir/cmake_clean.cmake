file(REMOVE_RECURSE
  "CMakeFiles/vgpu.dir/host.cpp.o"
  "CMakeFiles/vgpu.dir/host.cpp.o.d"
  "CMakeFiles/vgpu.dir/kernel.cpp.o"
  "CMakeFiles/vgpu.dir/kernel.cpp.o.d"
  "CMakeFiles/vgpu.dir/machine.cpp.o"
  "CMakeFiles/vgpu.dir/machine.cpp.o.d"
  "CMakeFiles/vgpu.dir/stream.cpp.o"
  "CMakeFiles/vgpu.dir/stream.cpp.o.d"
  "libvgpu.a"
  "libvgpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vgpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
