file(REMOVE_RECURSE
  "CMakeFiles/dacelite.dir/exec.cpp.o"
  "CMakeFiles/dacelite.dir/exec.cpp.o.d"
  "CMakeFiles/dacelite.dir/frontend.cpp.o"
  "CMakeFiles/dacelite.dir/frontend.cpp.o.d"
  "CMakeFiles/dacelite.dir/ir.cpp.o"
  "CMakeFiles/dacelite.dir/ir.cpp.o.d"
  "CMakeFiles/dacelite.dir/transforms.cpp.o"
  "CMakeFiles/dacelite.dir/transforms.cpp.o.d"
  "libdacelite.a"
  "libdacelite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dacelite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
