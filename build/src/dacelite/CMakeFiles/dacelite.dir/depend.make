# Empty dependencies file for dacelite.
# This may be replaced when dependencies are built.
