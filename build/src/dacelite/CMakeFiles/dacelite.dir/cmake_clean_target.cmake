file(REMOVE_RECURSE
  "libdacelite.a"
)
