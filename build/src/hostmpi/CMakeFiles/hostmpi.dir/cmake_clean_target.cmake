file(REMOVE_RECURSE
  "libhostmpi.a"
)
