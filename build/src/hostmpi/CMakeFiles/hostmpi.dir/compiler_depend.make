# Empty compiler generated dependencies file for hostmpi.
# This may be replaced when dependencies are built.
