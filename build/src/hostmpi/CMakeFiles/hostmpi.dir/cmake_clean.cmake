file(REMOVE_RECURSE
  "CMakeFiles/hostmpi.dir/comm.cpp.o"
  "CMakeFiles/hostmpi.dir/comm.cpp.o.d"
  "libhostmpi.a"
  "libhostmpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hostmpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
