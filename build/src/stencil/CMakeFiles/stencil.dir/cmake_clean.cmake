file(REMOVE_RECURSE
  "CMakeFiles/stencil.dir/runner.cpp.o"
  "CMakeFiles/stencil.dir/runner.cpp.o.d"
  "libstencil.a"
  "libstencil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stencil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
