file(REMOVE_RECURSE
  "libstencil.a"
)
