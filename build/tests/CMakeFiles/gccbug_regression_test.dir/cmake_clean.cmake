file(REMOVE_RECURSE
  "CMakeFiles/gccbug_regression_test.dir/gccbug_regression_test.cpp.o"
  "CMakeFiles/gccbug_regression_test.dir/gccbug_regression_test.cpp.o.d"
  "gccbug_regression_test"
  "gccbug_regression_test.pdb"
  "gccbug_regression_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gccbug_regression_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
