# Empty dependencies file for gccbug_regression_test.
# This may be replaced when dependencies are built.
