file(REMOVE_RECURSE
  "CMakeFiles/cg_test.dir/cg_test.cpp.o"
  "CMakeFiles/cg_test.dir/cg_test.cpp.o.d"
  "cg_test"
  "cg_test.pdb"
  "cg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
