# Empty compiler generated dependencies file for cpufree_test.
# This may be replaced when dependencies are built.
