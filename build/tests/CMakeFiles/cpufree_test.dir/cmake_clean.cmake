file(REMOVE_RECURSE
  "CMakeFiles/cpufree_test.dir/cpufree_test.cpp.o"
  "CMakeFiles/cpufree_test.dir/cpufree_test.cpp.o.d"
  "cpufree_test"
  "cpufree_test.pdb"
  "cpufree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpufree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
