file(REMOVE_RECURSE
  "CMakeFiles/dacelite_test.dir/dacelite_test.cpp.o"
  "CMakeFiles/dacelite_test.dir/dacelite_test.cpp.o.d"
  "dacelite_test"
  "dacelite_test.pdb"
  "dacelite_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dacelite_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
