# Empty compiler generated dependencies file for dacelite_test.
# This may be replaced when dependencies are built.
