file(REMOVE_RECURSE
  "CMakeFiles/hostmpi_test.dir/hostmpi_test.cpp.o"
  "CMakeFiles/hostmpi_test.dir/hostmpi_test.cpp.o.d"
  "hostmpi_test"
  "hostmpi_test.pdb"
  "hostmpi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hostmpi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
