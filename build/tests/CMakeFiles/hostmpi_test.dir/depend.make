# Empty dependencies file for hostmpi_test.
# This may be replaced when dependencies are built.
