file(REMOVE_RECURSE
  "CMakeFiles/vshmem_test.dir/vshmem_test.cpp.o"
  "CMakeFiles/vshmem_test.dir/vshmem_test.cpp.o.d"
  "vshmem_test"
  "vshmem_test.pdb"
  "vshmem_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vshmem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
