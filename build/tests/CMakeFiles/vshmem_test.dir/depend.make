# Empty dependencies file for vshmem_test.
# This may be replaced when dependencies are built.
