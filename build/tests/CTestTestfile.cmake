# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/vgpu_test[1]_include.cmake")
include("/root/repo/build/tests/gccbug_regression_test[1]_include.cmake")
include("/root/repo/build/tests/vshmem_test[1]_include.cmake")
include("/root/repo/build/tests/hostmpi_test[1]_include.cmake")
include("/root/repo/build/tests/cpufree_test[1]_include.cmake")
include("/root/repo/build/tests/stencil_test[1]_include.cmake")
include("/root/repo/build/tests/dacelite_test[1]_include.cmake")
include("/root/repo/build/tests/model_features_test[1]_include.cmake")
include("/root/repo/build/tests/cg_test[1]_include.cmake")
include("/root/repo/build/tests/failure_injection_test[1]_include.cmake")
