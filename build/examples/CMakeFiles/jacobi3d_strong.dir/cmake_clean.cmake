file(REMOVE_RECURSE
  "CMakeFiles/jacobi3d_strong.dir/jacobi3d_strong.cpp.o"
  "CMakeFiles/jacobi3d_strong.dir/jacobi3d_strong.cpp.o.d"
  "jacobi3d_strong"
  "jacobi3d_strong.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jacobi3d_strong.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
