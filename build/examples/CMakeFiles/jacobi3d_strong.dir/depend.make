# Empty dependencies file for jacobi3d_strong.
# This may be replaced when dependencies are built.
