file(REMOVE_RECURSE
  "CMakeFiles/dacelite_jacobi.dir/dacelite_jacobi.cpp.o"
  "CMakeFiles/dacelite_jacobi.dir/dacelite_jacobi.cpp.o.d"
  "dacelite_jacobi"
  "dacelite_jacobi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dacelite_jacobi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
