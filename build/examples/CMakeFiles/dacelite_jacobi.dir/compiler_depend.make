# Empty compiler generated dependencies file for dacelite_jacobi.
# This may be replaced when dependencies are built.
