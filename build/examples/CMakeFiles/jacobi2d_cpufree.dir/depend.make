# Empty dependencies file for jacobi2d_cpufree.
# This may be replaced when dependencies are built.
