file(REMOVE_RECURSE
  "CMakeFiles/jacobi2d_cpufree.dir/jacobi2d_cpufree.cpp.o"
  "CMakeFiles/jacobi2d_cpufree.dir/jacobi2d_cpufree.cpp.o.d"
  "jacobi2d_cpufree"
  "jacobi2d_cpufree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jacobi2d_cpufree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
