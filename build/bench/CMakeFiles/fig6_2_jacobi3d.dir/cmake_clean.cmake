file(REMOVE_RECURSE
  "CMakeFiles/fig6_2_jacobi3d.dir/fig6_2_jacobi3d.cpp.o"
  "CMakeFiles/fig6_2_jacobi3d.dir/fig6_2_jacobi3d.cpp.o.d"
  "fig6_2_jacobi3d"
  "fig6_2_jacobi3d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_2_jacobi3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
