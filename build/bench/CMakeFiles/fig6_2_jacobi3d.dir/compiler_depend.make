# Empty compiler generated dependencies file for fig6_2_jacobi3d.
# This may be replaced when dependencies are built.
