file(REMOVE_RECURSE
  "CMakeFiles/fig6_1_weak2d.dir/fig6_1_weak2d.cpp.o"
  "CMakeFiles/fig6_1_weak2d.dir/fig6_1_weak2d.cpp.o.d"
  "fig6_1_weak2d"
  "fig6_1_weak2d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_1_weak2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
