# Empty compiler generated dependencies file for fig6_1_weak2d.
# This may be replaced when dependencies are built.
