file(REMOVE_RECURSE
  "CMakeFiles/fig6_3_dace.dir/fig6_3_dace.cpp.o"
  "CMakeFiles/fig6_3_dace.dir/fig6_3_dace.cpp.o.d"
  "fig6_3_dace"
  "fig6_3_dace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_3_dace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
