
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig2_2_overhead.cpp" "bench/CMakeFiles/fig2_2_overhead.dir/fig2_2_overhead.cpp.o" "gcc" "bench/CMakeFiles/fig2_2_overhead.dir/fig2_2_overhead.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stencil/CMakeFiles/stencil.dir/DependInfo.cmake"
  "/root/repo/build/src/dacelite/CMakeFiles/dacelite.dir/DependInfo.cmake"
  "/root/repo/build/src/vshmem/CMakeFiles/vshmem.dir/DependInfo.cmake"
  "/root/repo/build/src/hostmpi/CMakeFiles/hostmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/vgpu/CMakeFiles/vgpu.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
