# Empty dependencies file for fig2_2_overhead.
# This may be replaced when dependencies are built.
